//! `parallel_scaling`: wall-clock scaling of the intra-run parallel cycle
//! engine (DESIGN.md §12) — nanoseconds per simulated cycle at 1/2/4/8
//! worker threads, swept over mesh sizes from the paper's 8×8 up to
//! 128×128, the regime where spatial sharding must amortize its barriers.
//!
//! Results are byte-identical at every thread count (the
//! `parallel_equivalence` suite proves it), so this bench measures *only*
//! wall-clock. Honesty notes baked into the output:
//!
//! * `host_cores` records the machine's available parallelism. On a
//!   single-core container the multi-thread rows measure barrier/handoff
//!   overhead, not speedup — read them together with `host_cores`.
//! * The adaptive serial/parallel gate is switched *off* here so the
//!   multi-thread rows measure the engine itself; with the gate on (the
//!   default) a losing configuration would fall back to serial stepping
//!   and every row would flatline at the serial cost.
//! * At idle the activity threshold keeps the engine serial regardless,
//!   so those rows should match the 1-thread rows to within noise;
//!   `parallel_cycles` in each row shows how often the parallel path ran.
//! * `mem_per_node_bytes` is the large-mesh leanness audit: it must stay
//!   in the same ballpark from 8×8 to 128×128 (traffic-dependent state
//!   aside), or the mesh sweep is buying speed with O(mesh²) memory.
//!
//! Writes machine-readable `results/BENCH_parallel.json` next to
//! `BENCH_step.json` so future PRs can track the scaling trajectory.

use afc_bench::microbench;
use afc_bench::MechanismId;
use afc_netsim::config::NetworkConfig;
use afc_netsim::network::Network;
use afc_netsim::sim::Simulation;
use afc_traffic::openloop::{OpenLoopTraffic, PacketMix, RateSpec};
use afc_traffic::synthetic::Pattern;

/// Thread counts swept for every case.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Wall-clock budget for the whole 128×128 sweep (all mechanisms, all
/// thread counts). The acceptance bar for "a 128×128 saturation run
/// completes within the bench cycle budget".
const MESH_128_BUDGET_S: f64 = 300.0;

/// One benched configuration: a mesh size with its saturating offered
/// rate and a cycle budget scaled so the whole sweep stays tractable.
struct MeshCase {
    mesh: u16,
    /// Offered packets/node/cycle at (over)saturation for this mesh.
    /// Uniform-random bisection capacity shrinks as ~4/k flits/node/cycle,
    /// so the saturating rate drops with mesh size.
    sat_rate: f64,
    warmup: u64,
    measure: u64,
    repeats: u32,
    mechanisms: &'static [MechanismId],
    /// Extra low-load/idle rows (AFC only, 8×8 only): documents the
    /// adaptive gate's fallback regime without quadrupling the sweep.
    low_load_rows: bool,
}

const MESH_CASES: [MeshCase; 4] = [
    MeshCase {
        mesh: 8,
        sat_rate: 0.30,
        warmup: 1_000,
        measure: 3_000,
        repeats: 3,
        mechanisms: &[
            MechanismId::Backpressured,
            MechanismId::Backpressureless,
            MechanismId::Drop,
            MechanismId::Afc,
        ],
        low_load_rows: true,
    },
    MeshCase {
        mesh: 32,
        sat_rate: 0.08,
        warmup: 300,
        measure: 1_000,
        repeats: 3,
        mechanisms: &[MechanismId::Backpressured, MechanismId::Afc],
        low_load_rows: false,
    },
    MeshCase {
        mesh: 64,
        sat_rate: 0.04,
        warmup: 150,
        measure: 400,
        repeats: 2,
        mechanisms: &[MechanismId::Backpressured, MechanismId::Afc],
        low_load_rows: false,
    },
    MeshCase {
        mesh: 128,
        sat_rate: 0.02,
        warmup: 50,
        measure: 150,
        repeats: 1,
        mechanisms: &[MechanismId::Afc],
        low_load_rows: false,
    },
];

fn make_sim(
    id: MechanismId,
    mesh: u16,
    rate: f64,
    threads: usize,
    warmup: u64,
) -> Simulation<OpenLoopTraffic> {
    let cfg = NetworkConfig {
        width: mesh,
        height: mesh,
        ..NetworkConfig::paper_8x8()
    };
    let network =
        Network::new(cfg, id.mechanism().factory.as_ref(), 0xBEEF).expect("valid mesh config");
    let traffic = OpenLoopTraffic::new(
        RateSpec::Uniform(rate),
        Pattern::UniformRandom,
        PacketMix::paper(),
        0xBEEF,
    );
    let mut sim = Simulation::new(network, traffic);
    sim.network.set_sim_threads(threads);
    // Measure the engine, not the gate's fallback (see module docs).
    sim.network.set_parallel_adaptive(false);
    sim.run(warmup);
    sim
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut group = microbench::group("parallel_scaling");
    let mut rows: Vec<String> = Vec::new();
    let mut budget_128_used = 0.0f64;

    for case in &MESH_CASES {
        let mut loads: Vec<(&str, f64)> = vec![("sat", case.sat_rate)];
        if case.low_load_rows {
            loads.push(("low", 0.05));
            loads.push(("idle", 0.0));
        }
        for &id in case.mechanisms {
            for &(load_label, rate) in &loads {
                if load_label != "sat" && id != MechanismId::Afc {
                    continue;
                }
                let mut serial_ns = f64::NAN;
                for threads in THREADS {
                    let label = format!(
                        "{}x{}/{}/{load_label}_{rate}/x{threads}",
                        case.mesh,
                        case.mesh,
                        id.label()
                    );
                    let mut parallel_cycles = 0u64;
                    let mut mem_total = 0usize;
                    let mut mem_per_node = 0usize;
                    let t_case = std::time::Instant::now();
                    let best = group.bench_units(
                        &label,
                        case.measure,
                        case.repeats,
                        || make_sim(id, case.mesh, rate, threads, case.warmup),
                        |sim| {
                            sim.run(case.measure);
                            parallel_cycles = sim.network.parallel_cycles();
                            let fp = sim.network.memory_footprint();
                            mem_total = fp.total_bytes();
                            mem_per_node = fp.per_node_bytes();
                        },
                    );
                    if case.mesh == 128 {
                        budget_128_used += t_case.elapsed().as_secs_f64();
                    }
                    if threads == 1 {
                        serial_ns = best;
                    }
                    rows.push(format!(
                        "    {{\"mesh\": \"{m}x{m}\", \"mechanism\": \"{}\", \
                         \"load\": \"{load_label}\", \"rate\": {rate}, \
                         \"threads\": {threads}, \"ns_per_cycle\": {best:.1}, \
                         \"speedup_vs_1t\": {:.3}, \"parallel_cycles\": {parallel_cycles}, \
                         \"mem_total_bytes\": {mem_total}, \
                         \"mem_per_node_bytes\": {mem_per_node}}}",
                        id.label(),
                        serial_ns / best,
                        m = case.mesh,
                    ));
                }
            }
        }
    }
    group.finish();

    let within_budget = budget_128_used <= MESH_128_BUDGET_S;
    let json = format!(
        "{{\n  \"bench\": \"parallel_scaling\",\n  \
         \"host_cores\": {host_cores},\n  \
         \"mesh_128_budget_s\": {MESH_128_BUDGET_S},\n  \
         \"mesh_128_used_s\": {budget_128_used:.1},\n  \
         \"mesh_128_within_budget\": {within_budget},\n  \
         \"unit\": \"ns_per_cycle\",\n  \"cases\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    // `cargo bench` runs with cwd = the package dir; anchor the artifact
    // at the workspace root next to the other `results/` outputs.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let out = root.join("results").join("BENCH_parallel.json");
    afc_bench::sweep::write_atomic(&out, json.as_bytes()).expect("writable results dir");
    println!(
        "\nwrote {} (host_cores={host_cores}, 128x128 sweep {budget_128_used:.1}s / budget {MESH_128_BUDGET_S}s)",
        out.display()
    );
    assert!(
        within_budget,
        "128x128 sweep blew its wall-clock budget: {budget_128_used:.1}s > {MESH_128_BUDGET_S}s"
    );
}
