//! Steady-state allocation discipline: once warmed up, the cycle engine's
//! hot loop must not touch the heap — no per-cycle `Vec` churn in the
//! channel lanes, router arbitration, delivery draining, or activity
//! bookkeeping (DESIGN.md §8).
//!
//! A counting wrapper around the system allocator measures allocations
//! across a timed window of [`Simulation::step`] calls. The workspace
//! simulation crates all `#![forbid(unsafe_code)]`; the `unsafe` needed to
//! implement [`GlobalAlloc`] lives here, in an integration-test binary
//! outside those crates.
//!
//! The zero-allocation guarantee is asserted for the *idle* steady state
//! (every lane ring, scratch buffer and reused `Vec` already at capacity;
//! this is the regime the activity tracker optimizes for and the one where
//! any per-cycle allocation is pure engine overhead, with no traffic noise
//! to excuse it). Loaded steady state is additionally bounded: traffic
//! generation allocates per *packet* (descriptor queues, reassembly maps),
//! so it is checked against a per-cycle budget rather than zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use afc_bench::MechanismId;
use afc_netsim::config::NetworkConfig;
use afc_netsim::network::Network;
use afc_netsim::sim::Simulation;
use afc_traffic::openloop::{OpenLoopTraffic, PacketMix, RateSpec};
use afc_traffic::synthetic::Pattern;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the wrapper only
// increments an atomic counter on the allocation paths.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

const MECHANISMS: [MechanismId; 4] = [
    MechanismId::Backpressured,
    MechanismId::Backpressureless,
    MechanismId::Drop,
    MechanismId::Afc,
];

fn warmed_sim(id: MechanismId, rate: f64, full_scan: bool) -> Simulation<OpenLoopTraffic> {
    let mut network = Network::new(
        NetworkConfig::paper_8x8(),
        id.mechanism().factory.as_ref(),
        0xFEED,
    )
    .expect("valid config");
    network.set_full_scan(full_scan);
    let traffic = OpenLoopTraffic::new(
        RateSpec::Uniform(rate),
        Pattern::UniformRandom,
        PacketMix::paper(),
        0xFEED,
    );
    let mut sim = Simulation::new(network, traffic);
    // Long warmup: every channel lane ring, router scratch vector, NACK
    // queue and delivery buffer must have seen its high-water mark.
    sim.run(3_000);
    sim
}

/// One test function (not one per case): integration tests run in
/// parallel threads by default, and the allocation counter is global —
/// serializing the measurements inside a single `#[test]` keeps other
/// threads' allocations out of the window.
#[test]
fn steady_state_step_loop_is_allocation_free() {
    for full_scan in [false, true] {
        for id in MECHANISMS {
            // Idle steady state: zero allocations allowed, on both the
            // activity-tracked fast path and the forced full scan.
            let mut sim = warmed_sim(id, 0.0, full_scan);
            sim.run(100); // settle the measurement harness itself
            let before = allocations();
            sim.run(2_000);
            let after = allocations();
            assert_eq!(
                after - before,
                0,
                "{} (full_scan={full_scan}): idle steady-state step loop \
                 allocated {} times in 2000 cycles",
                id.label(),
                after - before
            );

            // Loaded steady state: packet creation/reassembly allocates by
            // design, but the engine's own per-cycle cost must stay flat.
            // Budget: well under one allocation per cycle on a 64-node
            // mesh — impossible to meet if any per-component-per-cycle
            // path still allocates (that would cost tens per cycle).
            let mut sim = warmed_sim(id, 0.05, full_scan);
            sim.run(100);
            let before = allocations();
            sim.run(2_000);
            let per_cycle = (allocations() - before) as f64 / 2_000.0;
            assert!(
                per_cycle < 16.0,
                "{} (full_scan={full_scan}): {per_cycle:.1} allocations per \
                 cycle under load — a per-component hot path is allocating",
                id.label()
            );
        }
    }
}
