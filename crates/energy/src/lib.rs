//! # afc-energy — an Orion-style network energy model
//!
//! The paper evaluates energy with Orion callbacks from the Garnet timing
//! model. This crate plays the same role for the `afc-netsim` kernel:
//! routers *count activity* ([`afc_netsim::counters::ActivityCounters`]) and
//! this crate converts counts into joules under a technology preset.
//!
//! Components modeled:
//!
//! * dynamic energy scaling with flit width: buffer reads/writes, pipeline
//!   latch writes, crossbar traversals, link traversals (2.5 mm), plus
//!   per-event arbitration, credit and control-wire costs;
//! * buffer leakage scaling with instantiated buffer bits, with coarse
//!   power gating (90% effective, paper Section IV) while a router runs
//!   backpressureless;
//! * non-buffer router leakage;
//! * the "ideal buffer bypass" pricing mode that zeroes buffer dynamic
//!   energy — the lower bound the paper uses to stand in for all
//!   dynamic-energy buffer optimizations.
//!
//! ## Example
//!
//! ```
//! use afc_energy::{EnergyModel, EnergyParams};
//! use afc_netsim::prelude::*;
//! use afc_routers::BackpressuredFactory;
//!
//! let net = Network::new(NetworkConfig::paper_3x3(), &BackpressuredFactory::new(), 1)?;
//! let model = EnergyModel::new(EnergyParams::micro2010_70nm());
//! let energy = model.price_network(&net);
//! assert_eq!(energy.total(), 0.0); // nothing simulated yet
//! # Ok::<(), afc_netsim::error::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod params;

pub use model::{EnergyBreakdown, EnergyModel, MechanismProfile};
pub use params::EnergyParams;
