//! Run-wide statistics: latency accounting, load measurement utilities
//! (sliding window + EWMA, as used by AFC's contention monitor), and the
//! aggregate [`NetworkStats`] snapshot.

use crate::flit::Cycle;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

/// Streaming summary of a latency (or any nonnegative) distribution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyStats {
    count: u64,
    sum: u64,
    min: Option<u64>,
    max: Option<u64>,
}

impl LatencyStats {
    /// Creates an empty summary.
    pub fn new() -> LatencyStats {
        LatencyStats::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Minimum sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Maximum sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Serializes the summary for a snapshot.
    pub fn save(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.count);
        w.put_u64(self.sum);
        w.put_opt_u64(self.min);
        w.put_opt_u64(self.max);
    }

    /// Restores a summary written by [`LatencyStats::save`].
    pub fn load(r: &mut SnapshotReader<'_>) -> Result<LatencyStats, SnapshotError> {
        Ok(LatencyStats {
            count: r.get_u64("latency stats count")?,
            sum: r.get_u64("latency stats sum")?,
            min: r.get_opt_u64("latency stats min")?,
            max: r.get_opt_u64("latency stats max")?,
        })
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// A fixed-bucket latency histogram with percentile queries.
///
/// Buckets are linear with the given width; samples beyond the last bucket
/// land in an overflow bucket (counted, and reported as the overflow
/// boundary by percentile queries).
///
/// # Examples
///
/// ```
/// use afc_netsim::stats::Histogram;
/// let mut h = Histogram::new(10, 10); // 10 buckets of width 10
/// for v in [5, 15, 15, 95, 1000] { h.record(v); }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.percentile(0.5), Some(10)); // bucket lower bound
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram of `buckets` linear buckets of `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(buckets: usize, bucket_width: u64) -> Histogram {
        assert!(
            buckets > 0 && bucket_width > 0,
            "histogram must be nonempty"
        );
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.bucket_width) as usize;
        match self.buckets.get_mut(idx) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Lower bound of the bucket containing the `p`-quantile
    /// (`0.0 <= p <= 1.0`), or `None` if empty. Overflowing quantiles
    /// report the overflow boundary.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let target = ((self.count as f64 * p).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Some(i as u64 * self.bucket_width);
            }
        }
        Some(self.buckets.len() as u64 * self.bucket_width)
    }

    /// Iterates `(bucket_lower_bound, count)` for nonempty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (i as u64 * self.bucket_width, *c))
    }

    /// Serializes the histogram (geometry and contents) for a snapshot.
    pub fn save(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.bucket_width);
        w.put_usize(self.buckets.len());
        for b in &self.buckets {
            w.put_u64(*b);
        }
        w.put_u64(self.overflow);
        w.put_u64(self.count);
    }

    /// Restores a histogram written by [`Histogram::save`].
    pub fn load(r: &mut SnapshotReader<'_>) -> Result<Histogram, SnapshotError> {
        let bucket_width = r.get_u64("histogram bucket width")?;
        let n = r.get_usize("histogram bucket count")?;
        if bucket_width == 0 || n == 0 {
            return Err(SnapshotError::Malformed {
                what: "histogram geometry",
            });
        }
        let mut buckets = Vec::with_capacity(n);
        for _ in 0..n {
            buckets.push(r.get_u64("histogram bucket")?);
        }
        Ok(Histogram {
            bucket_width,
            buckets,
            overflow: r.get_u64("histogram overflow")?,
            count: r.get_u64("histogram count")?,
        })
    }

    /// Zeroes all counts in place, keeping the geometry and the bucket
    /// allocation (the parallel engine resets per-shard deltas every
    /// cycle; reallocating here would be per-cycle churn).
    pub fn clear(&mut self) {
        self.buckets.fill(0);
        self.overflow = 0;
        self.count = 0;
    }

    /// Bytes of heap owned by this histogram (the bucket array).
    pub fn heap_bytes(&self) -> usize {
        self.buckets.capacity() * std::mem::size_of::<u64>()
    }

    /// Merges another histogram (must have identical geometry).
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "bucket width mismatch"
        );
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "bucket count mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
    }
}

impl Default for Histogram {
    /// 256 buckets of width 8 cycles — covers latencies up to 2048 cycles
    /// before overflowing, which suits on-chip networks.
    fn default() -> Self {
        Histogram::new(256, 8)
    }
}

/// Exponentially weighted moving average:
/// `m_new = weight * m_old + (1 - weight) * sample`.
///
/// The paper smooths AFC's 4-cycle traffic-intensity window with weight 0.99
/// (Section IV).
#[derive(Debug, Clone, PartialEq)]
pub struct Ewma {
    weight: f64,
    value: f64,
}

impl Ewma {
    /// Creates an EWMA with the given weight on the *old* value.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not in `[0, 1)`.
    pub fn new(weight: f64) -> Ewma {
        assert!(
            (0.0..1.0).contains(&weight),
            "ewma weight must be in [0, 1)"
        );
        Ewma { weight, value: 0.0 }
    }

    /// Feeds one sample and returns the updated average.
    pub fn update(&mut self, sample: f64) -> f64 {
        self.value = self.weight * self.value + (1.0 - self.weight) * sample;
        self.value
    }

    /// Current average.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Whether the average sits exactly at zero, the fixed point of
    /// all-zero input: `update(0.0)` computes `weight * 0.0 + (1 -
    /// weight) * 0.0 == 0.0` bit-exactly, so once settled, any number of
    /// idle updates is a no-op. The activity-tracked engine uses this to
    /// skip idle replays without perturbing the estimate.
    pub fn is_settled(&self) -> bool {
        self.value == 0.0
    }

    /// Applies `count` zero-sample updates, bit-identical to calling
    /// `update(0.0)` `count` times: since the value is never negative,
    /// `weight * value + (1 - weight) * 0.0 == weight * value` at the bit
    /// level, and `0.0` is a fixed point (allowing early exit once the
    /// decay underflows). The loop is a bare multiply per skipped cycle —
    /// far cheaper than a full pipeline step, and bounded by the ~75k
    /// multiplies it takes any double to underflow to zero.
    pub fn decay_zero(&mut self, count: u64) {
        debug_assert!(self.value >= 0.0, "ewma fed negative samples");
        for _ in 0..count {
            if self.value == 0.0 {
                break;
            }
            self.value *= self.weight;
        }
    }

    /// Resets the average to zero.
    pub fn reset(&mut self) {
        self.value = 0.0;
    }

    /// Serializes the average for a snapshot (bit-exact: the value is
    /// written as its IEEE-754 pattern).
    pub fn save(&self, w: &mut SnapshotWriter) {
        w.put_f64(self.weight);
        w.put_f64(self.value);
    }

    /// Restores an average written by [`Ewma::save`].
    pub fn load(r: &mut SnapshotReader<'_>) -> Result<Ewma, SnapshotError> {
        let weight = r.get_f64("ewma weight")?;
        let value = r.get_f64("ewma value")?;
        if !(0.0..1.0).contains(&weight) || !value.is_finite() {
            return Err(SnapshotError::Malformed { what: "ewma state" });
        }
        Ok(Ewma { weight, value })
    }
}

/// Fixed-length sliding window over integer samples, reporting their mean.
///
/// AFC measures local traffic intensity as the flit count averaged over the
/// previous 4 cycles (Section III-B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlidingWindow {
    buf: Vec<u32>,
    next: usize,
    sum: u64,
    filled: usize,
}

impl SlidingWindow {
    /// Creates a window of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> SlidingWindow {
        assert!(len > 0, "window length must be positive");
        SlidingWindow {
            buf: vec![0; len],
            next: 0,
            sum: 0,
            filled: 0,
        }
    }

    /// Pushes a sample, evicting the oldest once full.
    pub fn push(&mut self, sample: u32) {
        self.sum -= self.buf[self.next] as u64;
        self.buf[self.next] = sample;
        self.sum += sample as u64;
        self.next = (self.next + 1) % self.buf.len();
        if self.filled < self.buf.len() {
            self.filled += 1;
        }
    }

    /// Mean over the window (over samples seen so far if not yet full;
    /// zero when empty).
    pub fn mean(&self) -> f64 {
        if self.filled == 0 {
            0.0
        } else {
            self.sum as f64 / self.filled as f64
        }
    }

    /// Whether every slot holds zero (`sum == 0` implies all-zero
    /// contents, since samples are unsigned).
    pub fn is_all_zero(&self) -> bool {
        self.sum == 0
    }

    /// Advances the window by `count` zero samples in O(1).
    ///
    /// Exactly equivalent to `count` calls of `push(0)` **provided the
    /// window is already all-zero** ([`SlidingWindow::is_all_zero`]):
    /// each such push evicts a zero, writes a zero, and only moves the
    /// cursor and the fill level.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the window still holds nonzero samples.
    pub fn skip_zero(&mut self, count: u64) {
        debug_assert!(self.is_all_zero(), "skip_zero on a nonzero window");
        let len = self.buf.len();
        self.next = (self.next + (count % len as u64) as usize) % len;
        self.filled = self
            .filled
            .saturating_add(count.min(len as u64) as usize)
            .min(len);
    }

    /// Zeroes the window in place — contents, cursor, sum, and fill level
    /// all return to the freshly constructed state — without touching the
    /// backing allocation (the arena-reuse path relies on this being
    /// allocation-free).
    pub fn reset(&mut self) {
        self.buf.fill(0);
        self.next = 0;
        self.sum = 0;
        self.filled = 0;
    }

    /// Serializes the window (contents and cursor) for a snapshot.
    pub fn save(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.buf.len());
        for s in &self.buf {
            w.put_u32(*s);
        }
        w.put_usize(self.next);
        w.put_u64(self.sum);
        w.put_usize(self.filled);
    }

    /// Restores a window written by [`SlidingWindow::save`].
    pub fn load(r: &mut SnapshotReader<'_>) -> Result<SlidingWindow, SnapshotError> {
        let len = r.get_usize("sliding window length")?;
        if len == 0 {
            return Err(SnapshotError::Malformed {
                what: "sliding window length",
            });
        }
        let mut buf = Vec::with_capacity(len);
        for _ in 0..len {
            buf.push(r.get_u32("sliding window sample")?);
        }
        let next = r.get_usize("sliding window cursor")?;
        let sum = r.get_u64("sliding window sum")?;
        let filled = r.get_usize("sliding window fill")?;
        if next >= len || filled > len || sum != buf.iter().map(|s| *s as u64).sum::<u64>() {
            return Err(SnapshotError::Malformed {
                what: "sliding window invariants",
            });
        }
        Ok(SlidingWindow {
            buf,
            next,
            sum,
            filled,
        })
    }
}

/// Aggregate statistics for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct NetworkStats {
    /// Packets enqueued at network interfaces.
    pub packets_offered: u64,
    /// Packets whose first flit entered the network.
    pub packets_injected: u64,
    /// Packets fully reassembled at their destination.
    pub packets_delivered: u64,
    /// Flits injected into the network.
    pub flits_injected: u64,
    /// Flits delivered (ejected and reassembled).
    pub flits_delivered: u64,
    /// Flits re-injected after being dropped (drop-based routers only).
    pub flits_retransmitted: u64,
    /// Flits that arrived at their destination NI with a mismatched
    /// checksum (corrupted by a link fault) and were NACKed to the source.
    pub flits_corrupted: u64,
    /// Flits silently lost to injected link faults (transient drop or a
    /// permanent kill).
    pub flits_lost_to_faults: u64,
    /// Credits lost to injected credit-channel faults.
    pub credits_lost: u64,
    /// NI retransmit timeouts that fired (each re-sends one whole packet).
    pub retransmit_timeouts: u64,
    /// Flits re-materialized by NI retransmit timeouts.
    pub flits_retransmit_copies: u64,
    /// Packets delivered only after at least one end-to-end retransmission.
    pub recovered_packets: u64,
    /// Redundant flit copies discarded at reassembly (a retransmitted copy
    /// raced an original that eventually arrived).
    pub duplicate_flits_discarded: u64,
    /// NACKed flits retired at their source in favor of a full-packet
    /// timeout retransmission (end-to-end recovery mode only).
    pub nacks_absorbed: u64,
    /// Total fault events injected by the fault plane.
    pub faults_injected: u64,
    /// Packets the NI gave up on after `max_attempts` retransmissions: the
    /// structured `Unreachable` outcome of DESIGN.md §13 (the per-packet
    /// records live in [`Network::unreachable_packets`]
    /// (crate::network::Network::unreachable_packets)).
    pub packets_unreachable: u64,
    /// Retransmit-queue flit copies discarded (never injected) when their
    /// packet was declared unreachable — the balancing term that keeps the
    /// flit-conservation audit exact under bounded retransmission.
    pub flits_abandoned: u64,
    /// Partial reassembly buffers discarded after going quiet for the
    /// recovery TTL — the destination-side cleanup for packets whose
    /// source gave up (or whose remaining flits a kill made undeliverable);
    /// without it a half-received packet would hold its NI non-idle
    /// forever.
    pub reassemblies_expired: u64,
    /// Directed links whose death the engine's deterministic fault
    /// detection has reported to the upstream router.
    pub links_failed: u64,
    /// Directed links whose revival the engine's deterministic repair
    /// detection has reported to both endpoints (DESIGN.md §15).
    pub links_revived: u64,
    /// [`UnreachablePacket`](crate::ni::UnreachablePacket) records evicted
    /// from the bounded unreachable log (oldest first) once it exceeded
    /// [`Network::UNREACHABLE_LOG_CAP`](crate::network::Network::UNREACHABLE_LOG_CAP).
    pub unreachable_records_dropped: u64,
    /// Cycles from each link kill to its local detection (the fault plan's
    /// configured detection delay; a distribution once plans mix delays).
    pub fault_detection_latency: LatencyStats,
    /// Network latency of delivered packets: first-flit injection to
    /// last-flit delivery.
    pub network_latency: LatencyStats,
    /// Histogram of network latencies (for percentile reporting).
    pub network_latency_hist: Histogram,
    /// Total latency of delivered packets: enqueue (packet creation) to
    /// last-flit delivery — includes source queueing delay.
    pub total_latency: LatencyStats,
    /// Hops taken by delivered flits.
    pub flit_hops: LatencyStats,
    /// Deflections suffered by delivered flits.
    pub flit_deflections: LatencyStats,
    /// Router-cycles spent in backpressured mode.
    pub cycles_backpressured: u64,
    /// Router-cycles spent in backpressureless mode.
    pub cycles_backpressureless: u64,
    /// Router-cycles spent transitioning between modes.
    pub cycles_transitioning: u64,
    /// High-water mark of simultaneously open reassembly buffers, across all
    /// network interfaces.
    pub reassembly_high_water: usize,
    /// Cycles simulated.
    pub cycles: Cycle,
}

impl NetworkStats {
    /// Creates zeroed statistics.
    pub fn new() -> NetworkStats {
        NetworkStats::default()
    }

    /// Zeroes every counter and distribution in place, keeping the
    /// histogram's bucket allocation (allocation-free reset for the
    /// parallel engine's per-shard deltas). The exhaustive destructuring
    /// makes adding a field without clearing it a compile error.
    pub fn clear(&mut self) {
        let NetworkStats {
            packets_offered,
            packets_injected,
            packets_delivered,
            flits_injected,
            flits_delivered,
            flits_retransmitted,
            flits_corrupted,
            flits_lost_to_faults,
            credits_lost,
            retransmit_timeouts,
            flits_retransmit_copies,
            recovered_packets,
            duplicate_flits_discarded,
            nacks_absorbed,
            faults_injected,
            packets_unreachable,
            flits_abandoned,
            reassemblies_expired,
            links_failed,
            links_revived,
            unreachable_records_dropped,
            fault_detection_latency,
            network_latency,
            network_latency_hist,
            total_latency,
            flit_hops,
            flit_deflections,
            cycles_backpressured,
            cycles_backpressureless,
            cycles_transitioning,
            reassembly_high_water,
            cycles,
        } = self;
        *packets_offered = 0;
        *packets_injected = 0;
        *packets_delivered = 0;
        *flits_injected = 0;
        *flits_delivered = 0;
        *flits_retransmitted = 0;
        *flits_corrupted = 0;
        *flits_lost_to_faults = 0;
        *credits_lost = 0;
        *retransmit_timeouts = 0;
        *flits_retransmit_copies = 0;
        *recovered_packets = 0;
        *duplicate_flits_discarded = 0;
        *nacks_absorbed = 0;
        *faults_injected = 0;
        *packets_unreachable = 0;
        *flits_abandoned = 0;
        *reassemblies_expired = 0;
        *links_failed = 0;
        *links_revived = 0;
        *unreachable_records_dropped = 0;
        *fault_detection_latency = LatencyStats::default();
        *network_latency = LatencyStats::default();
        network_latency_hist.clear();
        *total_latency = LatencyStats::default();
        *flit_hops = LatencyStats::default();
        *flit_deflections = LatencyStats::default();
        *cycles_backpressured = 0;
        *cycles_backpressureless = 0;
        *cycles_transitioning = 0;
        *reassembly_high_water = 0;
        *cycles = 0;
    }

    /// Bytes of heap owned by the statistics (histogram buckets).
    pub fn heap_bytes(&self) -> usize {
        self.network_latency_hist.heap_bytes()
    }

    /// Folds a worker shard's statistics delta into this accumulator.
    ///
    /// Every field is either a sum-mergeable counter, a mergeable
    /// distribution ([`LatencyStats::merge`] / [`Histogram::merge`]), or a
    /// monotone high-water mark (max). Addition is commutative and
    /// associative, and `LatencyStats`/`Histogram` merges are too, so the
    /// parallel engine's per-shard deltas fold to the exact bytes the
    /// serial engine would have produced regardless of shard count — as
    /// long as deltas are merged in a fixed order (they are: shard index).
    ///
    /// `cycles` is advanced by the engine epilogue, never by shards, so a
    /// worker delta always carries `cycles == 0`.
    pub fn merge(&mut self, other: &NetworkStats) {
        self.packets_offered += other.packets_offered;
        self.packets_injected += other.packets_injected;
        self.packets_delivered += other.packets_delivered;
        self.flits_injected += other.flits_injected;
        self.flits_delivered += other.flits_delivered;
        self.flits_retransmitted += other.flits_retransmitted;
        self.flits_corrupted += other.flits_corrupted;
        self.flits_lost_to_faults += other.flits_lost_to_faults;
        self.credits_lost += other.credits_lost;
        self.retransmit_timeouts += other.retransmit_timeouts;
        self.flits_retransmit_copies += other.flits_retransmit_copies;
        self.recovered_packets += other.recovered_packets;
        self.duplicate_flits_discarded += other.duplicate_flits_discarded;
        self.nacks_absorbed += other.nacks_absorbed;
        self.faults_injected += other.faults_injected;
        self.packets_unreachable += other.packets_unreachable;
        self.flits_abandoned += other.flits_abandoned;
        self.reassemblies_expired += other.reassemblies_expired;
        self.links_failed += other.links_failed;
        self.links_revived += other.links_revived;
        self.unreachable_records_dropped += other.unreachable_records_dropped;
        self.fault_detection_latency
            .merge(&other.fault_detection_latency);
        self.network_latency.merge(&other.network_latency);
        self.network_latency_hist.merge(&other.network_latency_hist);
        self.total_latency.merge(&other.total_latency);
        self.flit_hops.merge(&other.flit_hops);
        self.flit_deflections.merge(&other.flit_deflections);
        self.cycles_backpressured += other.cycles_backpressured;
        self.cycles_backpressureless += other.cycles_backpressureless;
        self.cycles_transitioning += other.cycles_transitioning;
        self.reassembly_high_water = self.reassembly_high_water.max(other.reassembly_high_water);
        self.cycles += other.cycles;
    }

    /// Delivered throughput in flits per node per cycle.
    pub fn throughput(&self, nodes: usize) -> f64 {
        if self.cycles == 0 || nodes == 0 {
            0.0
        } else {
            self.flits_delivered as f64 / (self.cycles as f64 * nodes as f64)
        }
    }

    /// Offered injection rate in flits per node per cycle.
    pub fn injection_rate(&self, nodes: usize) -> f64 {
        if self.cycles == 0 || nodes == 0 {
            0.0
        } else {
            self.flits_injected as f64 / (self.cycles as f64 * nodes as f64)
        }
    }

    /// Serializes every counter and distribution for a snapshot.
    pub fn save(&self, w: &mut SnapshotWriter) {
        for v in [
            self.packets_offered,
            self.packets_injected,
            self.packets_delivered,
            self.flits_injected,
            self.flits_delivered,
            self.flits_retransmitted,
            self.flits_corrupted,
            self.flits_lost_to_faults,
            self.credits_lost,
            self.retransmit_timeouts,
            self.flits_retransmit_copies,
            self.recovered_packets,
            self.duplicate_flits_discarded,
            self.nacks_absorbed,
            self.faults_injected,
            self.packets_unreachable,
            self.flits_abandoned,
            self.reassemblies_expired,
            self.links_failed,
            self.links_revived,
            self.unreachable_records_dropped,
        ] {
            w.put_u64(v);
        }
        self.fault_detection_latency.save(w);
        self.network_latency.save(w);
        self.network_latency_hist.save(w);
        self.total_latency.save(w);
        self.flit_hops.save(w);
        self.flit_deflections.save(w);
        w.put_u64(self.cycles_backpressured);
        w.put_u64(self.cycles_backpressureless);
        w.put_u64(self.cycles_transitioning);
        w.put_usize(self.reassembly_high_water);
        w.put_u64(self.cycles);
    }

    /// Restores statistics written by [`NetworkStats::save`].
    pub fn load(r: &mut SnapshotReader<'_>) -> Result<NetworkStats, SnapshotError> {
        Ok(NetworkStats {
            packets_offered: r.get_u64("stats packets_offered")?,
            packets_injected: r.get_u64("stats packets_injected")?,
            packets_delivered: r.get_u64("stats packets_delivered")?,
            flits_injected: r.get_u64("stats flits_injected")?,
            flits_delivered: r.get_u64("stats flits_delivered")?,
            flits_retransmitted: r.get_u64("stats flits_retransmitted")?,
            flits_corrupted: r.get_u64("stats flits_corrupted")?,
            flits_lost_to_faults: r.get_u64("stats flits_lost_to_faults")?,
            credits_lost: r.get_u64("stats credits_lost")?,
            retransmit_timeouts: r.get_u64("stats retransmit_timeouts")?,
            flits_retransmit_copies: r.get_u64("stats flits_retransmit_copies")?,
            recovered_packets: r.get_u64("stats recovered_packets")?,
            duplicate_flits_discarded: r.get_u64("stats duplicate_flits_discarded")?,
            nacks_absorbed: r.get_u64("stats nacks_absorbed")?,
            faults_injected: r.get_u64("stats faults_injected")?,
            packets_unreachable: r.get_u64("stats packets_unreachable")?,
            flits_abandoned: r.get_u64("stats flits_abandoned")?,
            reassemblies_expired: r.get_u64("stats reassemblies_expired")?,
            links_failed: r.get_u64("stats links_failed")?,
            links_revived: r.get_u64("stats links_revived")?,
            unreachable_records_dropped: r.get_u64("stats unreachable_records_dropped")?,
            fault_detection_latency: LatencyStats::load(r)?,
            network_latency: LatencyStats::load(r)?,
            network_latency_hist: Histogram::load(r)?,
            total_latency: LatencyStats::load(r)?,
            flit_hops: LatencyStats::load(r)?,
            flit_deflections: LatencyStats::load(r)?,
            cycles_backpressured: r.get_u64("stats cycles_backpressured")?,
            cycles_backpressureless: r.get_u64("stats cycles_backpressureless")?,
            cycles_transitioning: r.get_u64("stats cycles_transitioning")?,
            reassembly_high_water: r.get_usize("stats reassembly_high_water")?,
            cycles: r.get_u64("stats cycles")?,
        })
    }

    /// Fraction of router-cycles spent in backpressured mode (including
    /// transitions, which run backpressureless hardware but are attributed
    /// separately).
    pub fn backpressured_fraction(&self) -> f64 {
        let total =
            self.cycles_backpressured + self.cycles_backpressureless + self.cycles_transitioning;
        if total == 0 {
            0.0
        } else {
            self.cycles_backpressured as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_basic() {
        let mut s = LatencyStats::new();
        assert_eq!(s.mean(), None);
        s.record(4);
        s.record(8);
        s.record(6);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), Some(6.0));
        assert_eq!(s.min(), Some(4));
        assert_eq!(s.max(), Some(8));
    }

    #[test]
    fn latency_stats_merge() {
        let mut a = LatencyStats::new();
        a.record(1);
        let mut b = LatencyStats::new();
        b.record(9);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(9));
        let empty = LatencyStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn histogram_records_and_queries_percentiles() {
        let mut h = Histogram::new(10, 5);
        for v in [0, 4, 7, 12, 49] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.percentile(0.5), Some(5)); // third sample: bucket [5,10)
        assert_eq!(h.percentile(1.0), Some(45));
        assert_eq!(h.iter().count(), 4);
    }

    #[test]
    fn histogram_overflow_and_merge() {
        let mut a = Histogram::new(4, 10);
        a.record(100); // overflow
        a.record(5);
        let mut b = Histogram::new(4, 10);
        b.record(15);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.percentile(1.0), Some(40)); // overflow boundary
    }

    #[test]
    #[should_panic(expected = "bucket width mismatch")]
    fn histogram_merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(4, 10);
        let b = Histogram::new(4, 20);
        a.merge(&b);
    }

    #[test]
    fn histogram_empty_percentile_is_none() {
        assert_eq!(Histogram::new(4, 10).percentile(0.5), None);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.99);
        for _ in 0..2000 {
            e.update(2.0);
        }
        assert!((e.value() - 2.0).abs() < 0.01);
        e.reset();
        assert_eq!(e.value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "ewma weight")]
    fn ewma_rejects_bad_weight() {
        let _ = Ewma::new(1.0);
    }

    #[test]
    fn sliding_window_mean() {
        let mut w = SlidingWindow::new(4);
        assert_eq!(w.mean(), 0.0);
        w.push(4);
        assert_eq!(w.mean(), 4.0);
        w.push(0);
        w.push(0);
        w.push(4);
        assert_eq!(w.mean(), 2.0);
        // Evicts the first 4.
        w.push(0);
        assert_eq!(w.mean(), 1.0);
    }

    #[test]
    fn stats_snapshot_round_trip_is_exact() {
        let mut s = NetworkStats::new();
        s.packets_offered = 10;
        s.flits_injected = 37;
        s.network_latency.record(12);
        s.network_latency_hist.record(12);
        s.flit_hops.record(3);
        s.cycles_backpressured = 5;
        s.reassembly_high_water = 7;
        s.cycles = 400;
        let mut hw = SnapshotWriter::new();
        s.save(&mut hw);
        let bytes = hw.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let restored = NetworkStats::load(&mut r).unwrap();
        r.finish("stats").unwrap();
        let mut w2 = SnapshotWriter::new();
        restored.save(&mut w2);
        assert_eq!(bytes, w2.into_bytes());
        assert_eq!(restored.packets_offered, 10);
        assert_eq!(restored.network_latency.mean(), Some(12.0));
    }

    #[test]
    fn measurement_state_round_trips() {
        let mut e = Ewma::new(0.99);
        e.update(1.5);
        e.update(0.25);
        let mut win = SlidingWindow::new(4);
        win.push(3);
        win.push(0);
        let mut lw = SnapshotWriter::new();
        e.save(&mut lw);
        win.save(&mut lw);
        let bytes = lw.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let e2 = Ewma::load(&mut r).unwrap();
        let w2 = SlidingWindow::load(&mut r).unwrap();
        r.finish("measurement").unwrap();
        assert_eq!(e2, e);
        assert_eq!(w2, win);
    }

    #[test]
    fn throughput_math() {
        let stats = NetworkStats {
            flits_delivered: 900,
            flits_injected: 1000,
            cycles: 100,
            ..NetworkStats::new()
        };
        assert!((stats.throughput(9) - 1.0).abs() < 1e-12);
        assert!((stats.injection_rate(10) - 1.0).abs() < 1e-12);
        assert_eq!(NetworkStats::new().throughput(9), 0.0);
    }

    #[test]
    fn mode_fraction() {
        let stats = NetworkStats {
            cycles_backpressured: 75,
            cycles_backpressureless: 25,
            ..NetworkStats::new()
        };
        assert!((stats.backpressured_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(NetworkStats::new().backpressured_fraction(), 0.0);
    }
}
