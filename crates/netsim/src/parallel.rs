//! Deterministic intra-run parallel cycle engine (DESIGN.md §12).
//!
//! The mesh is partitioned into `T` contiguous **spatial shards** — node
//! range `[k·n/T, (k+1)·n/T)` plus each node's ejection NI and the
//! channels whose upstream end lies in the range. Each cycle runs as four
//! barrier-separated regions on a persistent `std::thread` pool:
//!
//! * **Region A** (phase 1): every shard *pulls* the staged deliveries
//!   incident on its own routers — credits/control from the staging slots
//!   of its routers' outgoing channels, flits from those of its incoming
//!   channels — walking each router's incident channels in ascending
//!   channel order, which reproduces the serial engine's per-router
//!   mutation sequence exactly. Deliveries cross the *deterministic* fault
//!   plane here: a flit or credit on a permanently killed channel is eaten
//!   (the only fault kind the fast path admits — kills draw no RNG), with
//!   the event recorded in the shard delta tagged by channel index so the
//!   epilogue can replay the fault log in the serial engine's channel
//!   order. The main thread additionally retires the NACK/ack queues and
//!   scans NI retransmit timeouts (phase 2a), which touch only NI/queue
//!   state disjoint from every shard's phase-1 writes.
//! * **Region B** (phases 2b + 3, fused): each shard injects from its own
//!   NIs, then steps its own routers. Produced flits go straight into the
//!   forward half of the router's outgoing channels (owned by this
//!   shard); credits/control go into the *reverse* half of its incoming
//!   channels. The channel halves ([`FwdLane`](crate::channel) /
//!   [`RevLane`](crate::channel)) are the double-buffered boundary slots:
//!   exactly one shard writes each half, so no ordering can depend on
//!   thread interleaving.
//! * **Region C** (phase 4): each shard advances its own channels,
//!   re-staging next cycle's deliveries.
//! * **Epilogue**: the main thread folds per-shard deltas (stats,
//!   conservation counters, dropped-flit NACKs, fault events) in ascending
//!   shard order — which equals the serial engine's accumulation order —
//!   drains NI sideband buffers (corrupt NACKs, end-to-end acks,
//!   unreachable-packet records; serial phase 3b) in NI order, and runs
//!   the watchdogs.
//!
//! ## Why the output is byte-identical at any thread count
//!
//! Every mutation in a cycle either (a) targets state owned by exactly one
//! shard (router, NI, channel half, staged delivery, mode-cache slot,
//! `accounted_upto` slot, activity bit), in which case the per-owner
//! mutation order matches the serial walk (ascending index), or (b) is a
//! commutative fold (counter sums, latency-distribution merges, idempotent
//! bitmask inserts via atomic OR) replayed in fixed shard order by the
//! epilogue. Router-step randomness is already thread-free: the per-step
//! RNG is forked as a pure function of `(seed, cycle, router)`. Hence the
//! post-cycle state — including the bytes of a snapshot — is a function of
//! the pre-cycle state only, never of `T` or the interleaving.
//!
//! Terminal errors keep their *identity* (the same `SimError` the serial
//! engine would have returned first) by taking the minimum over
//! `(phase, component index)` across shards; the post-error partial state
//! may differ from serial, which is fine because errors are terminal — the
//! network must not be stepped further either way.
//!
//! Cycles with little activity decline parallel execution (the engine
//! falls back to the serial walk, which is legal precisely because both
//! are byte-identical) so idle and low-load phases keep their serial-path
//! speed.
#![allow(unsafe_code)]

use crate::channel::{Channel, Delivery};
use crate::error::SimError;
use crate::faults::{FaultEvent, FaultEventKind};
use crate::flit::{Cycle, Flit};
use crate::geom::{DirMap, Direction, NodeId, PortId};
use crate::network::{ChannelEnds, Network};
use crate::ni::NodeInterface;
use crate::rng::SimRng;
use crate::router::{Router, RouterMode, RouterOutputs};
use crate::stats::NetworkStats;
use crate::topology::Mesh;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::ptr::addr_of_mut;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Minimum active components (routers + channels + sending NIs) per shard
/// for a cycle to be worth the barrier overhead; below this the engine
/// declines and the cycle runs serially.
pub(crate) const MIN_ACTIVE_PER_SHARD: usize = 16;

/// Spins before the barrier falls back to `yield_now` (keeps oversubscribed
/// hosts — e.g. single-core CI — from burning whole timeslices).
const SPIN_LIMIT: u32 = 128;

// ---------------------------------------------------------------------------
// Shard plan
// ---------------------------------------------------------------------------

/// Static partition of the mesh, built once per (topology, thread budget).
struct Plan {
    shards: usize,
    /// Node range of shard `k`: `[node_start[k], node_start[k+1])`.
    node_start: Vec<usize>,
    /// Channel range of shard `k` (channels grouped by upstream node).
    chan_start: Vec<usize>,
    /// Flattened per-router phase-1 pull lists: `(channel, is_fwd)` pairs,
    /// ascending channel index. `is_fwd` = the router is the channel's
    /// downstream end (receives the flit); otherwise it is the upstream
    /// end (receives credits/control).
    events: Vec<(u32, bool)>,
    ev_off: Vec<u32>,
    /// Cycle from which channel `c` is permanently dead (`Cycle::MAX` when
    /// never killed). The fast path admits only deterministic fault plans,
    /// whose entire effect this table captures.
    killed_at: Vec<Cycle>,
    mesh: Mesh,
    link_latency: u64,
    max_flit_age: u64,
}

impl Plan {
    fn build(net: &Network, threads: usize) -> Plan {
        let n = net.routers.len();
        let chan_count = net.channels.len();
        let shards = threads.min(n).max(1);
        let node_start: Vec<usize> = (0..=shards).map(|k| k * n / shards).collect();

        // Channels are created grouped by their upstream node in ascending
        // node order (Network::new), so per-node channel ranges are
        // contiguous; the engine's channel-ownership ranges follow the
        // node ranges directly.
        debug_assert!(net
            .ends
            .windows(2)
            .all(|w| w[0].from.index() <= w[1].from.index()));
        let mut node_chan_start = vec![0usize; n + 1];
        for e in &net.ends {
            node_chan_start[e.from.index() + 1] += 1;
        }
        for i in 0..n {
            node_chan_start[i + 1] += node_chan_start[i];
        }
        let chan_start: Vec<usize> = node_start.iter().map(|&ns| node_chan_start[ns]).collect();
        debug_assert_eq!(*chan_start.last().unwrap(), chan_count);

        let mut per: Vec<Vec<(u32, bool)>> = vec![Vec::new(); n];
        for (c, e) in net.ends.iter().enumerate() {
            per[e.from.index()].push((c as u32, false));
            per[e.to.index()].push((c as u32, true));
        }
        let mut events = Vec::with_capacity(2 * chan_count);
        let mut ev_off = vec![0u32; n + 1];
        for (j, mut list) in per.into_iter().enumerate() {
            list.sort_unstable_by_key(|&(c, _)| c);
            events.extend_from_slice(&list);
            ev_off[j + 1] = events.len() as u32;
        }

        let killed_at: Vec<Cycle> = net
            .ends
            .iter()
            .map(|e| {
                net.config
                    .faults
                    .first_kill_at(&net.mesh, e.from, e.dir)
                    .unwrap_or(Cycle::MAX)
            })
            .collect();

        Plan {
            shards,
            node_start,
            chan_start,
            events,
            ev_off,
            killed_at,
            mesh: net.mesh.clone(),
            link_latency: net.config.link_latency,
            max_flit_age: net.config.max_flit_age,
        }
    }
}

// ---------------------------------------------------------------------------
// Per-cycle job + per-shard delta
// ---------------------------------------------------------------------------

/// Raw shard views published by the main thread before each cycle.
///
/// The pointers are bases of the `Network`'s component vectors, re-derived
/// every cycle (so snapshot restores, which replace contents in place, and
/// struct moves are both safe). Workers only ever dereference elements
/// their shard owns — or, for activity bitmasks, go through word-level
/// atomics — so no two threads form overlapping `&mut`.
struct Job {
    now: Cycle,
    rng: SimRng,
    routers: *mut Box<dyn Router>,
    nis: *mut NodeInterface,
    channels: *mut Channel,
    pending: *mut Delivery,
    ends: *const ChannelEnds,
    out_chan: *const DirMap<Option<usize>>,
    in_chan: *const DirMap<Option<usize>>,
    accounted_upto: *mut Cycle,
    modes_cache: *mut RouterMode,
    router_active: *mut u64,
    chan_active: *mut u64,
    ni_send: *mut u64,
    ni_delivered: *mut u64,
}

/// Everything a shard accumulates during a cycle, folded by the epilogue.
struct ShardDelta {
    stats: NetworkStats,
    credits_delivered: u64,
    credits_pushed: u64,
    credits_faulted: u64,
    in_flight: i64,
    retx_queued: i64,
    mode_counts: [i64; 3],
    ni_hw_max: usize,
    /// Dropped flits (NACK circuit), in this shard's router-walk order.
    dropped: Vec<(Cycle, Flit)>,
    /// Fault-plane events, tagged `(channel, is_flit_event)`. The epilogue
    /// stable-sorts the union by that key, which reproduces the serial
    /// engine's fault-log order (ascending channel, credits before the
    /// flit within one channel's delivery).
    fault_events: Vec<(u32, bool, FaultEvent)>,
    scratch: RouterOutputs,
    /// First/minimal terminal error: `(phase, component index, error)`.
    error: Option<(u8, u32, SimError)>,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl ShardDelta {
    fn new() -> ShardDelta {
        ShardDelta {
            stats: NetworkStats::new(),
            credits_delivered: 0,
            credits_pushed: 0,
            credits_faulted: 0,
            in_flight: 0,
            retx_queued: 0,
            mode_counts: [0; 3],
            ni_hw_max: 0,
            dropped: Vec::new(),
            fault_events: Vec::new(),
            scratch: RouterOutputs::new(),
            error: None,
            panic: None,
        }
    }

    fn reset(&mut self) {
        self.stats = NetworkStats::new();
        self.credits_delivered = 0;
        self.credits_pushed = 0;
        self.credits_faulted = 0;
        self.in_flight = 0;
        self.retx_queued = 0;
        self.mode_counts = [0; 3];
        self.ni_hw_max = 0;
        self.dropped.clear();
        self.fault_events.clear();
        self.error = None;
        self.panic = None;
    }
}

// ---------------------------------------------------------------------------
// Barrier + shared pool state
// ---------------------------------------------------------------------------

/// Sense-reversing spin barrier with a bounded spin before yielding.
///
/// The last arriver's `fetch_add` closes the release chain over every
/// earlier arriver's writes and its `gen` store releases them to all
/// waiters, so crossing the barrier is an all-to-all happens-before edge —
/// which is why the engine's bitmask ops can be `Relaxed`.
struct SpinBarrier {
    count: AtomicUsize,
    gen: AtomicUsize,
    total: usize,
}

impl SpinBarrier {
    fn new(total: usize) -> SpinBarrier {
        SpinBarrier {
            count: AtomicUsize::new(0),
            gen: AtomicUsize::new(0),
            total,
        }
    }

    fn wait(&self) {
        let g = self.gen.load(Ordering::Relaxed);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.count.store(0, Ordering::Relaxed);
            self.gen.store(g.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.gen.load(Ordering::Acquire) == g {
                spins = spins.saturating_add(1);
                if spins < SPIN_LIMIT {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

struct Shared {
    barrier: SpinBarrier,
    job: UnsafeCell<Option<Job>>,
    deltas: Vec<UnsafeCell<ShardDelta>>,
    /// A shard recorded an error/panic in region A (stable once the sync2
    /// barrier is crossed; gates region B deterministically).
    poison_a: AtomicBool,
    /// Same for region B (stable after sync3; gates region C).
    poison_b: AtomicBool,
    shutdown: AtomicBool,
}

// SAFETY: `Job`'s raw pointers are only dereferenced between the barrier
// pair that publishes them and the one that retires them, and only on
// shard-owned elements (or via word atomics) — see the module docs. The
// deltas are single-writer (their shard) between barriers and read by the
// main thread only after sync4.
#[allow(unsafe_code)]
unsafe impl Send for Shared {}
#[allow(unsafe_code)]
unsafe impl Sync for Shared {}

/// Persistent shard plan + worker pool attached to a [`Network`].
pub(crate) struct Engine {
    plan: Arc<Plan>,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("shards", &self.plan.shards)
            .finish_non_exhaustive()
    }
}

impl Engine {
    fn new(net: &Network, threads: usize) -> Engine {
        let plan = Arc::new(Plan::build(net, threads));
        let shared = Arc::new(Shared {
            barrier: SpinBarrier::new(plan.shards),
            job: UnsafeCell::new(None),
            deltas: (0..plan.shards)
                .map(|_| UnsafeCell::new(ShardDelta::new()))
                .collect(),
            poison_a: AtomicBool::new(false),
            poison_b: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });
        let workers = (1..plan.shards)
            .map(|shard| {
                let sh = Arc::clone(&shared);
                let pl = Arc::clone(&plan);
                std::thread::Builder::new()
                    .name(format!("afc-sim-{shard}"))
                    .spawn(move || worker_loop(&sh, &pl, shard))
                    .expect("failed to spawn sim worker thread")
            })
            .collect();
        Engine {
            plan,
            shared,
            workers,
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::Release);
        // Workers are parked at sync1 between cycles; one crossing releases
        // them to observe the shutdown flag and exit.
        self.shared.barrier.wait();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Atomic bitmask helpers
// ---------------------------------------------------------------------------

/// # Safety
/// `words` must point at a live `u64` bitmask covering bit `i`, aligned for
/// `AtomicU64` (u64 and AtomicU64 share layout and alignment on supported
/// 64-bit targets).
#[inline]
unsafe fn set_bit(words: *mut u64, i: usize) {
    AtomicU64::from_ptr(words.add(i >> 6)).fetch_or(1u64 << (i & 63), Ordering::Relaxed);
}

/// # Safety
/// See [`set_bit`].
#[inline]
unsafe fn clear_bit(words: *mut u64, i: usize) {
    AtomicU64::from_ptr(words.add(i >> 6)).fetch_and(!(1u64 << (i & 63)), Ordering::Relaxed);
}

/// Walks set bits of `[lo, hi)` in ascending order from per-word snapshots
/// (the serial engine's exact iteration discipline, masked to the shard's
/// range). The callback returns `false` to stop early.
///
/// # Safety
/// `words` must cover bit range `[lo, hi)` and stay live for the call.
unsafe fn walk_masked(words: *mut u64, lo: usize, hi: usize, mut f: impl FnMut(usize) -> bool) {
    if lo >= hi {
        return;
    }
    let w_lo = lo >> 6;
    let w_hi = (hi - 1) >> 6;
    for wi in w_lo..=w_hi {
        let mut w = AtomicU64::from_ptr(words.add(wi)).load(Ordering::Relaxed);
        if wi == w_lo {
            w &= !0u64 << (lo & 63);
        }
        if wi == hi >> 6 {
            // Only reachable when `hi % 64 != 0` (else `hi >> 6 > w_hi`).
            w &= (1u64 << (hi & 63)) - 1;
        }
        while w != 0 {
            let i = (wi << 6) + w.trailing_zeros() as usize;
            w &= w - 1;
            if !f(i) {
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Cycle regions
// ---------------------------------------------------------------------------

fn min_error(delta: &mut ShardDelta, phase: u8, index: u32, err: SimError) {
    match &delta.error {
        Some((p, i, _)) if (*p, *i) <= (phase, index) => {}
        _ => delta.error = Some((phase, index, err)),
    }
}

/// Region A: phase-1 pull for one shard's routers.
///
/// # Safety
/// Must run between sync1 and sync2 with a valid published `Job`; only
/// shard `shard` may call it for that shard.
unsafe fn region_a(job: &Job, plan: &Plan, shard: usize, delta: &mut ShardDelta) {
    let now = job.now;
    for j in plan.node_start[shard]..plan.node_start[shard + 1] {
        let router = &mut *job.routers.add(j);
        let evs = &plan.events[plan.ev_off[j] as usize..plan.ev_off[j + 1] as usize];
        for &(c32, is_fwd) in evs {
            let c = c32 as usize;
            let pend = &*(job.pending.add(c) as *const Delivery);
            if is_fwd {
                let Some(flit) = pend.flit else { continue };
                if plan.killed_at[c] <= now {
                    // Deterministic fault plane: the link is dead, the flit
                    // is eaten — exactly the serial engine's `flit_fate`,
                    // which runs before the age check (a killed flit can
                    // never be the serial run's first error).
                    if delta.error.is_none() {
                        let ends = &*job.ends.add(c);
                        delta.stats.flits_lost_to_faults += 1;
                        delta.stats.faults_injected += 1;
                        delta.in_flight -= 1;
                        delta.fault_events.push((
                            c32,
                            true,
                            FaultEvent::for_flit(now, ends.from, ends.dir, &flit, true),
                        ));
                    }
                    continue;
                }
                if plan.max_flit_age > 0 {
                    let age = now.saturating_sub(flit.injected_at);
                    if age > plan.max_flit_age {
                        min_error(
                            delta,
                            1,
                            c32,
                            SimError::FlitOverAge {
                                cycle: now,
                                limit: plan.max_flit_age,
                                age,
                                node: (*job.ends.add(c)).to,
                                flit,
                            },
                        );
                        continue;
                    }
                }
                if delta.error.is_some() {
                    // After an error only keep age-checking (read-only) so
                    // the minimal erroring channel — the serial engine's
                    // first — is reported; stop mutating router state.
                    continue;
                }
                let dir = (*job.ends.add(c)).dir;
                set_bit(job.router_active, j);
                router.receive_flit(PortId::Net(dir.opposite()), flit, now);
            } else {
                if delta.error.is_some() {
                    continue;
                }
                let ends = &*job.ends.add(c);
                let dir = ends.dir;
                if plan.killed_at[c] <= now {
                    // A dead link loses its credits too (serial
                    // `credit_lost`); control signals are sideband and
                    // still cross, keeping fault gossip alive.
                    for _ in pend.credits() {
                        delta.stats.credits_lost += 1;
                        delta.stats.faults_injected += 1;
                        delta.credits_faulted += 1;
                        delta.fault_events.push((
                            c32,
                            false,
                            FaultEvent {
                                cycle: now,
                                from: ends.from,
                                dir,
                                kind: FaultEventKind::CreditLost,
                            },
                        ));
                    }
                } else {
                    for &credit in pend.credits() {
                        delta.credits_delivered += 1;
                        set_bit(job.router_active, j);
                        router.receive_credit(PortId::Net(dir), credit, now);
                    }
                }
                for &signal in pend.control() {
                    set_bit(job.router_active, j);
                    router.receive_control(PortId::Net(dir), signal, now);
                }
            }
        }
    }
}

/// Region B: fused phase 2b (inject from own NIs) + phase 3 (step own
/// routers, route outputs into owned channel halves).
///
/// # Safety
/// Must run between sync2 and sync3 with a valid published `Job`; only
/// shard `shard` may call it for that shard.
unsafe fn region_b(job: &Job, plan: &Plan, shard: usize, delta: &mut ShardDelta) {
    let now = job.now;
    let (lo, hi) = (plan.node_start[shard], plan.node_start[shard + 1]);

    walk_masked(job.ni_send, lo, hi, |i| {
        let ni = &mut *job.nis.add(i);
        let router = &mut *job.routers.add(i);
        let inj0 = delta.stats.flits_injected;
        let rtx0 = delta.stats.flits_retransmitted;
        ni.try_inject(router.as_mut(), now, &mut delta.stats);
        let retransmitted = delta.stats.flits_retransmitted - rtx0;
        let entered = (delta.stats.flits_injected - inj0) + retransmitted;
        if entered > 0 {
            delta.in_flight += entered as i64;
            set_bit(job.router_active, i);
        }
        delta.retx_queued -= retransmitted as i64;
        if ni.pending_packets() > 0 || ni.pending_retransmits() > 0 {
            set_bit(job.ni_send, i);
        } else {
            clear_bit(job.ni_send, i);
        }
        true
    });

    walk_masked(job.router_active, lo, hi, |i| {
        step_one_router(job, plan, delta, i);
        // Stop this shard at its first terminal error: within-shard router
        // order is ascending, so the shard's error is its minimal one.
        delta.error.is_none()
    });
}

/// One router's phase-3 step (the parallel twin of the serial
/// `Network::step_one_router`, writing into shard-owned channel halves and
/// the shard's delta instead of the global accumulators).
unsafe fn step_one_router(job: &Job, plan: &Plan, delta: &mut ShardDelta, i: usize) {
    let now = job.now;
    let router = &mut *job.routers.add(i);
    let accounted = &mut *job.accounted_upto.add(i);
    let pending_idle = now - *accounted;
    if pending_idle > 0 {
        #[cfg(debug_assertions)]
        let expected = router.counters_view(pending_idle);
        router.note_idle_cycles(pending_idle);
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            *router.counters(),
            expected,
            "router {i}: note_idle_cycles disagrees with counters_view"
        );
    }
    *accounted = now + 1;

    delta.scratch.clear();
    let mut rng = job.rng.fork((now << 16) ^ i as u64);
    router.step(now, &mut rng, &mut delta.scratch);

    for dir in Direction::ALL {
        if let Some(flit) = delta.scratch.flits[PortId::Net(dir)] {
            let Some(chan) = (&*job.out_chan.add(i))[dir] else {
                min_error(
                    delta,
                    3,
                    i as u32,
                    SimError::Misrouted {
                        cycle: now,
                        node: NodeId::new(i),
                        dir,
                        flit,
                    },
                );
                return;
            };
            set_bit(job.chan_active, chan);
            // Forward half owned by this shard (the channel's upstream end
            // is router `i`); the downstream shard may concurrently write
            // the reverse half — disjoint fields, no `&mut Channel` formed.
            (&mut *addr_of_mut!((*job.channels.add(chan)).fwd)).push_flit(flit);
        }
        for &credit in &delta.scratch.credits[PortId::Net(dir)] {
            if let Some(chan) = (&*job.in_chan.add(i))[dir] {
                set_bit(job.chan_active, chan);
                (&mut *addr_of_mut!((*job.channels.add(chan)).rev)).push_credit(credit);
                delta.credits_pushed += 1;
            }
        }
    }
    if delta.scratch.flits[PortId::Local].is_some() {
        min_error(
            delta,
            3,
            i as u32,
            SimError::ProtocolViolation {
                cycle: now,
                node: NodeId::new(i),
                what: "routers must use `ejected`, not the Local flit slot",
            },
        );
        return;
    }
    for &signal in &delta.scratch.control {
        for dir in Direction::ALL {
            if let Some(chan) = (&*job.in_chan.add(i))[dir] {
                set_bit(job.chan_active, chan);
                (&mut *addr_of_mut!((*job.channels.add(chan)).rev)).push_control(signal);
            }
        }
    }
    if !delta.scratch.ejected.is_empty() {
        let ni = &mut *job.nis.add(i);
        delta.in_flight -= delta.scratch.ejected.len() as i64;
        ni.receive_flits(delta.scratch.ejected.drain(..), now, &mut delta.stats);
        delta.ni_hw_max = delta.ni_hw_max.max(ni.reassembly_high_water());
        if ni.has_delivered() {
            set_bit(job.ni_delivered, i);
        }
    }
    if !delta.scratch.dropped.is_empty() {
        delta.in_flight -= delta.scratch.dropped.len() as i64;
        for flit in delta.scratch.dropped.drain(..) {
            let dist = plan.mesh.distance(NodeId::new(i), flit.src) as u64;
            let ready = now + dist * plan.link_latency + 2;
            delta.dropped.push((ready, flit));
        }
    }

    let mode = router.mode();
    let cached = &mut *job.modes_cache.add(i);
    if mode != *cached {
        delta.mode_counts[Network::mode_slot(*cached)] -= 1;
        delta.mode_counts[Network::mode_slot(mode)] += 1;
        *cached = mode;
    }
    if router.is_quiescent() {
        clear_bit(job.router_active, i);
    } else {
        set_bit(job.router_active, i);
    }
}

/// Region C: phase-4 channel advance for one shard's channels.
///
/// # Safety
/// Must run between sync3 and sync4 with a valid published `Job`; only
/// shard `shard` may call it for that shard. Fast-path only (per-channel
/// `held` queues are all empty — checked by the gate).
unsafe fn region_c(job: &Job, plan: &Plan, shard: usize) {
    walk_masked(
        job.chan_active,
        plan.chan_start[shard],
        plan.chan_start[shard + 1],
        |c| {
            let ch = &mut *job.channels.add(c);
            let pend = &mut *job.pending.add(c);
            *pend = ch.advance();
            if pend.is_empty() && ch.is_drained() {
                clear_bit(job.chan_active, c);
            } else {
                set_bit(job.chan_active, c);
            }
            true
        },
    );
}

// ---------------------------------------------------------------------------
// Worker loop + main-thread orchestration
// ---------------------------------------------------------------------------

fn run_guarded(shared: &Shared, shard: usize, region: u8, f: impl FnOnce(&mut ShardDelta)) {
    // SAFETY: each delta is written only by its shard between barriers.
    let delta = unsafe { &mut *shared.deltas[shard].get() };
    let had_error = delta.error.is_some();
    let result = catch_unwind(AssertUnwindSafe(|| f(delta)));
    // SAFETY: as above (the closure's borrow ended with the call).
    let delta = unsafe { &mut *shared.deltas[shard].get() };
    if let Err(payload) = result {
        if delta.panic.is_none() {
            delta.panic = Some(payload);
        }
    }
    let poisoned = delta.panic.is_some() || (delta.error.is_some() && !had_error);
    if poisoned {
        match region {
            1 => shared.poison_a.store(true, Ordering::Release),
            _ => shared.poison_b.store(true, Ordering::Release),
        }
    }
}

fn worker_loop(shared: &Shared, plan: &Plan, shard: usize) {
    loop {
        shared.barrier.wait(); // sync1: job published (or shutdown)
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        // SAFETY: the job is published before sync1 and not mutated again
        // until after sync4; reading it here is data-race free.
        let job = unsafe { (*shared.job.get()).as_ref().expect("job published") };
        run_guarded(shared, shard, 1, |d| {
            // SAFETY: between sync1 and sync2, on this shard.
            unsafe { region_a(job, plan, shard, d) }
        });
        shared.barrier.wait(); // sync2
        if !shared.poison_a.load(Ordering::Acquire) {
            run_guarded(shared, shard, 2, |d| {
                // SAFETY: between sync2 and sync3, on this shard.
                unsafe { region_b(job, plan, shard, d) }
            });
        }
        shared.barrier.wait(); // sync3
        if !shared.poison_a.load(Ordering::Acquire) && !shared.poison_b.load(Ordering::Acquire) {
            run_guarded(shared, shard, 3, |_| {
                // SAFETY: between sync3 and sync4, on this shard.
                unsafe { region_c(job, plan, shard) }
            });
        }
        shared.barrier.wait(); // sync4
    }
}

/// Serial-equivalent phase 2a, run by the main thread inside region A: the
/// NACK/ack queues, the retransmit timeout scan, and the NI send queues it
/// touches are disjoint from every shard's phase-1 writes (routers +
/// staged deliveries).
///
/// # Safety
/// Must run between sync1 and sync4's exclusivity window with a valid
/// `Job`; only the main thread may call it.
unsafe fn run_phase_2a(net: &mut Network, job: &Job) {
    let now = job.now;
    let recovery = net.config.retransmit.is_some();
    if !net.nack_queue.is_empty() {
        let mut i = 0;
        while i < net.nack_queue.len() {
            if net.nack_queue[i].0 <= now {
                let (_, flit) = net.nack_queue.swap_remove(i);
                let src = flit.src.index();
                (&mut *job.nis.add(src)).nack(flit, now, &mut net.stats);
                if !recovery {
                    // Without end-to-end recovery a NACK requeues the flit
                    // directly; with it the copy is absorbed and the
                    // timeout path re-materializes the packet.
                    net.retx_queued += 1;
                }
                set_bit(job.ni_send, src);
            } else {
                i += 1;
            }
        }
    }
    // End-to-end acks retire outstanding packets at their source.
    if !net.ack_queue.is_empty() {
        let mut i = 0;
        while i < net.ack_queue.len() {
            if net.ack_queue[i].0 <= now {
                let (_, src, id) = net.ack_queue.swap_remove(i);
                (&mut *job.nis.add(src.index())).acknowledge(id, &mut net.stats);
            } else {
                i += 1;
            }
        }
    }
    // NI retransmit timeouts fire, mirroring the serial engine's ascending
    // scan (bounded attempts may retire packets as unreachable here).
    if recovery {
        let copies0 = net.stats.flits_retransmit_copies;
        let abandoned0 = net.stats.flits_abandoned;
        let n = net.nis.len();
        for i in 0..n {
            let c0 = net.stats.flits_retransmit_copies;
            (&mut *job.nis.add(i)).check_timeouts(now, &mut net.stats);
            if net.stats.flits_retransmit_copies > c0 {
                // Re-materialized copies must be visible to the masked
                // injection walk in region B.
                set_bit(job.ni_send, i);
            }
        }
        net.retx_queued += (net.stats.flits_retransmit_copies - copies0) as usize;
        // Copies purged when a packet was given up never inject.
        net.retx_queued -= (net.stats.flits_abandoned - abandoned0) as usize;
    }
}

/// Attempts one parallel cycle. Returns `None` when the cycle should run
/// serially instead (not enough activity, residual held-back flits from a
/// restored faulted run, or a degenerate shard count).
pub(crate) fn try_step_parallel(net: &mut Network) -> Option<Result<(), SimError>> {
    let threads = net.sim_threads().min(net.routers.len());
    if threads < 2 {
        return None;
    }
    let active =
        net.router_active.popcount() + net.chan_active.popcount() + net.ni_send_active.popcount();
    if active < net.par_min_active.saturating_mul(threads) {
        return None;
    }
    if net.held.iter().any(|h| !h.is_empty()) {
        return None;
    }
    if net.engine.is_none() {
        let engine = Engine::new(net, threads);
        net.engine = Some(engine);
    }
    let (shared, plan) = {
        let engine = net.engine.as_ref().expect("engine just ensured");
        (Arc::clone(&engine.shared), Arc::clone(&engine.plan))
    };
    Some(step_cycle(net, &shared, &plan))
}

fn step_cycle(net: &mut Network, shared: &Shared, plan: &Plan) -> Result<(), SimError> {
    let now = net.now;
    net.parallel_cycles += 1;
    // Exclusive window: workers are parked at sync1.
    // SAFETY: sole accessor of the shared cells until the barrier crossing.
    unsafe {
        for d in &shared.deltas {
            (*d.get()).reset();
        }
        shared.poison_a.store(false, Ordering::Relaxed);
        shared.poison_b.store(false, Ordering::Relaxed);
        *shared.job.get() = Some(Job {
            now,
            rng: net.rng.clone(),
            routers: net.routers.as_mut_ptr(),
            nis: net.nis.as_mut_ptr(),
            channels: net.channels.as_mut_ptr(),
            pending: net.pending.as_mut_ptr(),
            ends: net.ends.as_ptr(),
            out_chan: net.out_chan.as_ptr(),
            in_chan: net.in_chan.as_ptr(),
            accounted_upto: net.accounted_upto.as_mut_ptr(),
            modes_cache: net.modes_cache.as_mut_ptr(),
            router_active: net.router_active.words.as_mut_ptr(),
            chan_active: net.chan_active.words.as_mut_ptr(),
            ni_send: net.ni_send_active.words.as_mut_ptr(),
            ni_delivered: net.ni_delivered.words.as_mut_ptr(),
        });
    }
    // SAFETY: published above; immutable until the post-sync4 window.
    let job = unsafe { (*shared.job.get()).as_ref().expect("job just published") };

    shared.barrier.wait(); // sync1
    run_guarded(shared, 0, 1, |d| {
        // SAFETY: between sync1 and sync2, on shard 0 (main).
        unsafe { region_a(job, plan, 0, d) }
    });
    {
        // Phase 2a runs on the main thread concurrently with the other
        // shards' region A — its state is disjoint from theirs.
        let result = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: main-thread-only state + shard-disjoint NI access.
            unsafe { run_phase_2a(net, job) }
        }));
        if let Err(payload) = result {
            // SAFETY: shard 0's delta is main-owned between barriers.
            let d0 = unsafe { &mut *shared.deltas[0].get() };
            if d0.panic.is_none() {
                d0.panic = Some(payload);
            }
            shared.poison_a.store(true, Ordering::Release);
        }
    }
    shared.barrier.wait(); // sync2
    if !shared.poison_a.load(Ordering::Acquire) {
        run_guarded(shared, 0, 2, |d| {
            // SAFETY: between sync2 and sync3, on shard 0 (main).
            unsafe { region_b(job, plan, 0, d) }
        });
    }
    shared.barrier.wait(); // sync3
    if !shared.poison_a.load(Ordering::Acquire) && !shared.poison_b.load(Ordering::Acquire) {
        run_guarded(shared, 0, 3, |_| {
            // SAFETY: between sync3 and sync4, on shard 0 (main).
            unsafe { region_c(job, plan, 0) }
        });
    }
    shared.barrier.wait(); // sync4 — workers parked again; exclusive window.

    // Epilogue: fold shard deltas in ascending shard order (== ascending
    // router ranges == the serial engine's accumulation order).
    let mut in_flight = net.in_flight as i64;
    let mut retx = net.retx_queued as i64;
    let mut modes = net.mode_counts.map(|m| m as i64);
    let mut error: Option<(u8, u32, SimError)> = None;
    let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
    let mut fault_events: Vec<(u32, bool, FaultEvent)> = Vec::new();
    for cell in &shared.deltas {
        // SAFETY: workers are parked; main is the sole accessor.
        let d = unsafe { &mut *cell.get() };
        net.stats.merge(&d.stats);
        net.credits_delivered += d.credits_delivered;
        net.credits_pushed += d.credits_pushed;
        net.credits_faulted += d.credits_faulted;
        in_flight += d.in_flight;
        retx += d.retx_queued;
        for (m, dm) in modes.iter_mut().zip(d.mode_counts) {
            *m += dm;
        }
        net.ni_high_water_max = net.ni_high_water_max.max(d.ni_hw_max);
        net.nack_queue.append(&mut d.dropped);
        fault_events.append(&mut d.fault_events);
        if let Some((p, i, e)) = d.error.take() {
            match &error {
                Some((bp, bi, _)) if (*bp, *bi) <= (p, i) => {}
                _ => error = Some((p, i, e)),
            }
        }
        if panic_payload.is_none() {
            panic_payload = d.panic.take();
        }
    }
    net.in_flight = in_flight as usize;
    net.retx_queued = retx as usize;
    net.mode_counts = modes.map(|m| m as u64);
    if !fault_events.is_empty() {
        // Serial fault-log order: ascending channel, a channel's lost
        // credits before its dropped flit (one flit per channel per cycle,
        // so the key is a total order up to same-channel credits, whose
        // relative order the stable sort preserves).
        fault_events.sort_by_key(|&(c, is_flit, _)| (c, is_flit));
        for (_, _, ev) in fault_events {
            net.log_fault(ev);
        }
    }

    if let Some(payload) = panic_payload {
        resume_unwind(payload);
    }
    if let Some((_, _, e)) = error {
        return Err(e);
    }

    // Serial phase 3b: corrupt arrivals join the NACK circuit, fresh acks
    // start their trip back, unreachable-packet records are collected.
    // Channel state (region C) and NI sideband buffers are disjoint, so
    // running it after the barriers is byte-identical to the serial
    // placement between phases 3 and 4.
    if !net.config.faults.is_empty() || net.config.retransmit.is_some() {
        for i in 0..net.nis.len() {
            for flit in net.nis[i].take_corrupt() {
                let dist = net.mesh.distance(NodeId::new(i), flit.src) as u64;
                let ready = now + dist * net.config.link_latency + 2;
                net.nack_queue.push((ready, flit));
            }
            for (src, id) in net.nis[i].take_acks() {
                let dist = net.mesh.distance(NodeId::new(i), src) as u64;
                let ready = now + dist * net.config.link_latency;
                net.ack_queue.push((ready, src, id));
            }
            net.nis[i].drain_unreachable_into(&mut net.unreachable_packets);
        }
    }

    net.now += 1;
    net.stats.cycles += 1;
    net.stats.cycles_backpressured += net.mode_counts[0];
    net.stats.cycles_backpressureless += net.mode_counts[1];
    net.stats.cycles_transitioning += net.mode_counts[2];
    net.stats.reassembly_high_water = net.stats.reassembly_high_water.max(net.ni_high_water_max);

    #[cfg(debug_assertions)]
    if net.check_conservation {
        debug_assert_eq!(
            net.in_flight,
            net.flits_in_network(),
            "incremental in-flight accounting diverged (parallel engine)"
        );
        debug_assert_eq!(
            net.retx_queued,
            net.nis
                .iter()
                .map(NodeInterface::pending_retransmits)
                .sum::<usize>(),
            "incremental retransmit-queue accounting diverged (parallel engine)"
        );
    }

    let progress =
        net.stats.flits_injected + net.stats.flits_delivered + net.stats.packets_unreachable;
    if progress != net.last_progress {
        net.last_progress = progress;
        net.last_progress_cycle = net.now;
    } else if net.config.stall_watchdog > 0
        && net.now.saturating_sub(net.last_progress_cycle) >= net.config.stall_watchdog
    {
        let in_flight = net.unaccounted_flits() as u64;
        if in_flight > 0 {
            return Err(SimError::Stalled {
                cycle: net.now,
                in_flight,
                per_router_occupancy: net.routers.iter().map(|r| r.occupancy()).collect(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_is_all_to_all() {
        let barrier = Arc::new(SpinBarrier::new(4));
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let b = Arc::clone(&barrier);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for round in 1..=100usize {
                    c.fetch_add(1, Ordering::Relaxed);
                    b.wait();
                    // Every participant's pre-barrier increment is visible.
                    assert!(c.load(Ordering::Relaxed) >= 4 * round);
                    b.wait();
                }
            }));
        }
        for round in 1..=100usize {
            counter.fetch_add(1, Ordering::Relaxed);
            barrier.wait();
            assert!(counter.load(Ordering::Relaxed) >= 4 * round);
            barrier.wait();
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn masked_walk_matches_reference() {
        let mut words = [0u64; 4];
        let bits = [0usize, 1, 5, 63, 64, 65, 127, 128, 200, 255];
        for &b in &bits {
            words[b >> 6] |= 1 << (b & 63);
        }
        for (lo, hi) in [(0, 256), (1, 255), (64, 128), (63, 65), (65, 65), (5, 6)] {
            let mut got = Vec::new();
            // SAFETY: `words` outlives the call and covers [0, 256).
            unsafe {
                walk_masked(words.as_mut_ptr(), lo, hi, |i| {
                    got.push(i);
                    true
                });
            }
            let want: Vec<usize> = bits
                .iter()
                .copied()
                .filter(|&b| b >= lo && b < hi)
                .collect();
            assert_eq!(got, want, "range [{lo}, {hi})");
        }
    }
}
