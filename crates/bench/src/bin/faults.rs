//! Fault-injection sweep: resilience of the four flow-control mechanisms
//! under transient link faults, with end-to-end recovery enabled.
//!
//! For each mechanism and per-flit-hop fault rate, the run injects
//! open-loop uniform-random traffic, stops the sources, and drains; the
//! table reports delivery fraction, recovery activity, and latency
//! degradation. A second section demonstrates the liveness watchdogs under
//! a permanent link kill: runs either recover via retransmission or
//! terminate with a structured stall report — never hang.

use afc_bench::mechanisms::Mechanism;
use afc_bench::report::{percent, Table};
use afc_core::AfcFactory;
use afc_netsim::config::{NetworkConfig, RetransmitConfig};
use afc_netsim::error::SimError;
use afc_netsim::faults::FaultPlan;
use afc_netsim::geom::{Coord, Direction};
use afc_routers::{BackpressuredFactory, DeflectionFactory, DropFactory};
use afc_traffic::openloop::{PacketMix, RateSpec};
use afc_traffic::runner::run_fault_scenario;
use afc_traffic::synthetic::Pattern;

/// The four routers of the paper's comparison, in figure order.
fn fault_mechanisms() -> Vec<Mechanism> {
    vec![
        Mechanism {
            label: "backpressured",
            factory: Box::new(BackpressuredFactory::new()),
        },
        Mechanism {
            label: "backpressureless",
            factory: Box::new(DeflectionFactory::new()),
        },
        Mechanism {
            label: "drop",
            factory: Box::new(DropFactory::new()),
        },
        Mechanism {
            label: "afc",
            factory: Box::new(AfcFactory::paper()),
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    afc_bench::sweep::parse_threads_arg_or_exit(&args);
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    let (inject, drain) = if quick {
        (2_000, 100_000)
    } else {
        (6_000, 400_000)
    };
    let rates: &[f64] = if quick {
        &[0.0, 5e-4, 1e-3]
    } else {
        &[0.0, 1e-4, 5e-4, 1e-3]
    };

    println!("Transient-fault sweep: uniform random load 0.10 flit/node/cycle,");
    println!("drop+corrupt rate per flit-hop, retransmit timeout 600 (cap 2^4), seed {seed}\n");
    let mut t = Table::new(vec![
        "mechanism",
        "fault rate",
        "delivered",
        "recovered",
        "timeouts",
        "corrupted",
        "lost flits",
        "dup drops",
        "mean lat",
        "outcome",
    ]);
    let mechs = fault_mechanisms();
    let jobs: Vec<(usize, f64)> = (0..mechs.len())
        .flat_map(|mi| rates.iter().map(move |&r| (mi, r)))
        .collect();
    let rows = afc_bench::sweep::run_sweep("fault-transient", &jobs, |_, &(mi, rate)| {
        let m = &mechs[mi];
        let cfg = NetworkConfig {
            faults: FaultPlan::uniform_transient(rate, rate),
            retransmit: Some(RetransmitConfig::default()),
            ..NetworkConfig::paper_3x3()
        };
        let out = run_fault_scenario(
            m.factory.as_ref(),
            &cfg,
            RateSpec::Uniform(0.10),
            Pattern::UniformRandom,
            PacketMix::paper(),
            inject,
            drain,
            seed,
        )
        .expect("valid configuration");
        let s = &out.stats;
        let outcome = match &out.error {
            Some(SimError::Stalled { cycle, .. }) => format!("STALLED@{cycle}"),
            Some(e) => format!("ERROR: {e}"),
            None if out.drained => "drained".to_string(),
            None => "drain budget exhausted".to_string(),
        };
        vec![
            m.label.to_string(),
            format!("{rate:.0e}"),
            percent(out.delivered_fraction()),
            s.recovered_packets.to_string(),
            s.retransmit_timeouts.to_string(),
            s.flits_corrupted.to_string(),
            s.flits_lost_to_faults.to_string(),
            s.duplicate_flits_discarded.to_string(),
            s.network_latency
                .mean()
                .map(|l| format!("{l:.1}"))
                .unwrap_or_else(|| "-".into()),
            outcome,
        ]
    });
    for row in rows {
        t.row(row);
    }
    println!("{}", t.render());

    // Permanent-fault demo: kill the center router's east link mid-run.
    // Since the fault-aware routing layer (DESIGN.md §13) landed, every
    // mechanism — including backpressured XY, whose single deterministic
    // path crosses the dead link — detects the kill, gossips the fault
    // map, and detours over the alive graph; the stall watchdog remains
    // as the backstop that turns any residual hang into a structured
    // report instead of an infinite loop.
    println!("\nPermanent link kill: center node (1,1) east output dies at cycle 1000\n");
    let mesh = NetworkConfig::paper_3x3().mesh().expect("valid mesh");
    let center = mesh.node_at(Coord::new(1, 1)).expect("3x3 has a center");
    let mut t = Table::new(vec!["mechanism", "delivered", "recovered", "outcome"]);
    let kill_rows = afc_bench::sweep::run_sweep("fault-link-kill", &mechs, |_, m| {
        let cfg = NetworkConfig {
            faults: FaultPlan::none().kill_link(center, Direction::East, 1_000),
            retransmit: Some(RetransmitConfig::default()),
            stall_watchdog: 20_000,
            ..NetworkConfig::paper_3x3()
        };
        let out = run_fault_scenario(
            m.factory.as_ref(),
            &cfg,
            RateSpec::Uniform(0.10),
            Pattern::UniformRandom,
            PacketMix::paper(),
            if quick { 2_000 } else { 4_000 },
            if quick { 60_000 } else { 120_000 },
            seed,
        )
        .expect("valid configuration");
        let outcome = match &out.error {
            Some(SimError::Stalled {
                cycle, in_flight, ..
            }) => {
                format!("STALLED@{cycle} ({in_flight} flits unaccounted)")
            }
            Some(e) => format!("ERROR: {e}"),
            None if out.drained => "drained (recovered around the dead link)".to_string(),
            None => "still retrying at drain budget".to_string(),
        };
        vec![
            m.label.to_string(),
            percent(out.delivered_fraction()),
            out.stats.recovered_packets.to_string(),
            outcome,
        ]
    });
    for row in kill_rows {
        t.row(row);
    }
    println!("{}", t.render());

    degradation_sweep(quick, seed);

    let timing = afc_bench::sweep::write_timing_report("faults").expect("writable results dir");
    println!("(timing: {})", timing.display());
}

/// Graceful-degradation curve: throughput retained as progressively more
/// links are killed mid-run.
///
/// For each kill count `k` the sweep picks `k` distinct directed links of
/// an 8x8 mesh with a seeded shuffle (the same seed gives the same storm),
/// kills them all at a fixed mid-injection cycle, and measures the
/// delivered fraction per mechanism with bounded retransmission. The
/// headline column is throughput retained relative to the same mechanism's
/// own fault-free (`k = 0`) run, so the curve isolates degradation from
/// baseline throughput differences. Results land in
/// `results/BENCH_degradation.json` and `results/degradation.csv`.
fn degradation_sweep(quick: bool, seed: u64) {
    use afc_netsim::rng::SimRng;

    let kill_counts: &[usize] = if quick {
        &[0, 2, 8]
    } else {
        &[0, 1, 2, 4, 8, 16, 32]
    };
    let (inject, drain) = if quick {
        (1_500, 60_000)
    } else {
        (3_000, 200_000)
    };
    const KILL_AT: u64 = 500;

    let base_cfg = NetworkConfig::paper_8x8();
    let mesh = base_cfg.mesh().expect("valid 8x8 mesh");
    // Every directed link of the mesh, in deterministic node/direction
    // order, then seed-shuffled once; kill count `k` takes the prefix so
    // larger storms strictly contain smaller ones.
    let mesh_ref = &mesh;
    let mut links: Vec<(afc_netsim::geom::NodeId, Direction)> = mesh
        .nodes()
        .flat_map(|n| {
            Direction::ALL
                .into_iter()
                .filter(move |&d| mesh_ref.neighbor(n, d).is_some())
                .map(move |d| (n, d))
        })
        .collect();
    let mut rng = SimRng::seed_from(seed ^ 0xDE64);
    rng.shuffle(&mut links);

    println!(
        "\nDegradation curve: 8x8 mesh, uniform random load 0.10, {} links killed at cycle {KILL_AT},",
        kill_counts
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join("/"),
    );
    println!("retransmit timeout 300 (cap 2^2, max 4 attempts), seed {seed}\n");

    let mechs = fault_mechanisms();
    let jobs: Vec<(usize, usize)> = (0..mechs.len())
        .flat_map(|mi| kill_counts.iter().map(move |&k| (mi, k)))
        .collect();
    let rows = afc_bench::sweep::run_sweep("fault-degradation", &jobs, |_, &(mi, k)| {
        let m = &mechs[mi];
        let mut plan = FaultPlan::none();
        for &(node, dir) in &links[..k] {
            plan = plan.kill_link(node, dir, KILL_AT);
        }
        let cfg = NetworkConfig {
            faults: plan,
            retransmit: Some(RetransmitConfig {
                timeout: 300,
                backoff_cap: 2,
                max_attempts: 4,
            }),
            ..NetworkConfig::paper_8x8()
        };
        let out = run_fault_scenario(
            m.factory.as_ref(),
            &cfg,
            RateSpec::Uniform(0.10),
            Pattern::UniformRandom,
            PacketMix::paper(),
            inject,
            drain,
            seed,
        )
        .expect("valid configuration");
        let s = &out.stats;
        let outcome = match &out.error {
            Some(e) => format!("ERROR: {e}"),
            None if out.drained => "drained".to_string(),
            None => "drain budget exhausted".to_string(),
        };
        (
            m.label,
            k,
            out.delivered_fraction(),
            s.links_failed,
            out.network.total_counters().reroutes,
            s.packets_unreachable,
            outcome,
        )
    });

    // Throughput retained is relative to the same mechanism's k = 0 row.
    let mut baseline = std::collections::HashMap::new();
    for &(label, k, delivered, ..) in &rows {
        if k == 0 {
            baseline.insert(label, delivered);
        }
    }
    let mut t = Table::new(vec![
        "mechanism",
        "links killed",
        "delivered",
        "retained",
        "links detected",
        "reroutes",
        "unreachable",
        "outcome",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    for (label, k, delivered, failed, reroutes, unreachable, outcome) in &rows {
        let retained = delivered / baseline.get(label).copied().unwrap_or(1.0).max(1e-12);
        t.row(vec![
            label.to_string(),
            k.to_string(),
            percent(*delivered),
            percent(retained),
            failed.to_string(),
            reroutes.to_string(),
            unreachable.to_string(),
            outcome.clone(),
        ]);
        json_rows.push(format!(
            "    {{\"mechanism\": \"{label}\", \"links_killed\": {k}, \
             \"delivered_fraction\": {delivered:.4}, \"throughput_retained\": {retained:.4}, \
             \"links_detected\": {failed}, \"reroutes\": {reroutes}, \
             \"packets_unreachable\": {unreachable}, \"outcome\": \"{outcome}\"}}"
        ));
    }
    println!("{}", t.render());

    let json = format!(
        "{{\n  \"bench\": \"degradation\",\n  \"mesh\": \"8x8\",\n  \"rate\": 0.10,\n  \
         \"kill_at\": {KILL_AT},\n  \"inject_cycles\": {inject},\n  \"seed\": {seed},\n  \
         \"quick\": {quick},\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let json_path = root.join("results").join("BENCH_degradation.json");
    afc_bench::sweep::write_atomic(&json_path, json.as_bytes()).expect("writable results dir");
    let csv_path = root.join("results").join("degradation.csv");
    afc_bench::sweep::write_atomic(&csv_path, t.to_csv().as_bytes()).expect("writable results dir");
    println!("(wrote {} and {})", json_path.display(), csv_path.display());
}
