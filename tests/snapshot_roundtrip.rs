//! Snapshot/restore round-trip suite: the acceptance tests for the
//! checkpoint subsystem.
//!
//! For every router mechanism × traffic pattern, run an open-loop sim to a
//! seed-drawn "random" cycle, capture a snapshot, restore it into a freshly
//! constructed simulation, and step both for the same tail. The restored
//! run must be **byte-identical** to the uninterrupted original: the same
//! delivered-packet stream (ids and cycles) and — the strongest check — an
//! identical second snapshot, which covers every router register, channel
//! lane, NI queue, RNG stream, counter, and statistic in one comparison.
//!
//! Variants cover the fault plane (retransmissions, held flits, fault
//! logs), the closed-loop memory-system workload, and the forced full-scan
//! engine path (`Network::set_full_scan`; CI additionally reruns this whole
//! suite under `AFC_FULL_SCAN=1`).

use afc_netsim::config::{NetworkConfig, RetransmitConfig};
use afc_netsim::faults::FaultPlan;
use afc_netsim::flit::Cycle;
use afc_netsim::network::Network;
use afc_netsim::packet::DeliveredPacket;
use afc_netsim::rng::SimRng;
use afc_netsim::router::RouterFactory;
use afc_netsim::sim::{Simulation, TrafficModel};
use afc_netsim::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use afc_noc::prelude::*;

fn mechanism(idx: usize) -> (&'static str, Box<dyn RouterFactory>) {
    match idx % 5 {
        0 => ("backpressured", Box::new(BackpressuredFactory::new())),
        1 => ("deflection", Box::new(DeflectionFactory::new())),
        2 => ("drop", Box::new(DropFactory::new())),
        3 => ("afc", Box::new(AfcFactory::paper())),
        _ => (
            "afc-always-bp",
            Box::new(AfcFactory::always_backpressured()),
        ),
    }
}

fn patterns() -> Vec<(&'static str, Pattern)> {
    vec![
        ("uniform", Pattern::UniformRandom),
        ("transpose", Pattern::Transpose),
        ("near-neighbor", Pattern::NearNeighbor),
    ]
}

/// Open-loop traffic that also records every delivery, forwarding the
/// snapshot hooks to the wrapped model (its own log is observation state,
/// cleared at the comparison point rather than serialized).
struct Recorder {
    inner: OpenLoopTraffic,
    log: Vec<(u64, Cycle)>,
}

impl Recorder {
    fn new(inner: OpenLoopTraffic) -> Recorder {
        Recorder {
            inner,
            log: Vec::new(),
        }
    }
}

impl TrafficModel for Recorder {
    fn pre_cycle(&mut self, now: Cycle, net: &mut Network) {
        self.inner.pre_cycle(now, net);
    }
    fn on_delivered(&mut self, packet: &DeliveredPacket, now: Cycle, net: &mut Network) {
        self.inner.on_delivered(packet, now, net);
        self.log.push((packet.descriptor.id.0, packet.delivered_at));
    }
    fn save_state(&self, w: &mut SnapshotWriter) -> Result<(), SnapshotError> {
        self.inner.save_state(w)
    }
    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.inner.load_state(r)
    }
}

fn open_loop_sim(
    cfg: &NetworkConfig,
    factory: &dyn RouterFactory,
    pattern: Pattern,
    rate: f64,
    seed: u64,
    full_scan: bool,
) -> Simulation<Recorder> {
    let mut network = Network::new(cfg.clone(), factory, seed).expect("valid config");
    if full_scan {
        network.set_full_scan(true);
    }
    let traffic = OpenLoopTraffic::new(RateSpec::Uniform(rate), pattern, PacketMix::paper(), seed);
    Simulation::new(network, Recorder::new(traffic))
}

/// Core round-trip check: warm up, snapshot, restore into a fresh sim, run
/// both for `tail` cycles, compare delivered streams and second snapshots.
#[allow(clippy::too_many_arguments)]
fn assert_round_trip(
    cfg: &NetworkConfig,
    factory: &dyn RouterFactory,
    pattern: Pattern,
    rate: f64,
    seed: u64,
    warm: u64,
    tail: u64,
    full_scan: bool,
    ctx: &str,
) {
    let mut original = open_loop_sim(cfg, factory, pattern.clone(), rate, seed, full_scan);
    original.run(warm);
    let snap = original
        .snapshot()
        .unwrap_or_else(|e| panic!("{ctx}: snapshot failed: {e}"));

    let mut restored = open_loop_sim(cfg, factory, pattern, rate, seed, full_scan);
    restored
        .restore(&snap, "<memory>")
        .unwrap_or_else(|e| panic!("{ctx}: restore failed: {e}"));

    // Restoring is idempotent at the byte level: a snapshot of the restored
    // sim equals the snapshot it came from.
    let resnap = restored
        .snapshot()
        .unwrap_or_else(|e| panic!("{ctx}: re-snapshot failed: {e}"));
    assert_eq!(snap, resnap, "{ctx}: restore(snapshot) is not byte-stable");

    original.traffic.log.clear();
    restored.traffic.log.clear();
    original.run(tail);
    restored.run(tail);

    assert_eq!(
        original.traffic.log, restored.traffic.log,
        "{ctx}: delivered-packet streams diverged after restore"
    );
    assert_eq!(
        original.network.now(),
        restored.network.now(),
        "{ctx}: cycle clocks diverged"
    );
    let a = original
        .snapshot()
        .unwrap_or_else(|e| panic!("{ctx}: final snapshot failed: {e}"));
    let b = restored
        .snapshot()
        .unwrap_or_else(|e| panic!("{ctx}: final snapshot failed: {e}"));
    assert_eq!(a, b, "{ctx}: post-tail state diverged from the original");
}

/// All five mechanism variants × three patterns, snapshot at a seed-drawn
/// cycle, byte-identical continuation.
#[test]
fn open_loop_round_trip_all_mechanisms_and_patterns() {
    let cfg = NetworkConfig::paper_3x3();
    for m in 0..5 {
        let (mname, factory) = mechanism(m);
        for (pname, pattern) in patterns() {
            let mut draw = SimRng::seed_from(0x5AFE + m as u64);
            let warm = 200 + draw.gen_range(600);
            let ctx = format!("{mname}/{pname}/warm{warm}");
            assert_round_trip(
                &cfg,
                factory.as_ref(),
                pattern,
                0.15,
                0xC0FFEE,
                warm,
                400,
                false,
                &ctx,
            );
        }
    }
}

/// Round trip under the forced full-component-scan engine path.
#[test]
fn open_loop_round_trip_full_scan_engine() {
    let cfg = NetworkConfig::paper_3x3();
    for m in 0..5 {
        let (mname, factory) = mechanism(m);
        let ctx = format!("{mname}/uniform/full-scan");
        assert_round_trip(
            &cfg,
            factory.as_ref(),
            Pattern::UniformRandom,
            0.15,
            0xC0FFEE,
            500,
            400,
            true,
            &ctx,
        );
    }
}

/// Round trip with the fault plane enabled: retransmit machinery, held
/// flits, NACK/ack queues, and the fault log all survive the snapshot.
#[test]
fn open_loop_round_trip_under_faults() {
    let cfg = NetworkConfig {
        faults: FaultPlan::uniform_transient(1e-3, 1e-3),
        retransmit: Some(RetransmitConfig::default()),
        ..NetworkConfig::paper_3x3()
    };
    for m in 0..5 {
        let (mname, factory) = mechanism(m);
        let ctx = format!("{mname}/uniform/faults");
        assert_round_trip(
            &cfg,
            factory.as_ref(),
            Pattern::UniformRandom,
            0.10,
            0xFA017,
            600,
            600,
            false,
            &ctx,
        );
    }
}

/// Round trip on a non-square mesh (exercises fingerprint dimensions and
/// edge-router port maps).
#[test]
fn open_loop_round_trip_rectangular_mesh() {
    let cfg = NetworkConfig {
        width: 4,
        height: 2,
        ..NetworkConfig::paper_3x3()
    };
    for m in 0..5 {
        let (mname, factory) = mechanism(m);
        let ctx = format!("{mname}/uniform/4x2");
        assert_round_trip(
            &cfg,
            factory.as_ref(),
            Pattern::UniformRandom,
            0.12,
            0xAB1E,
            350,
            350,
            false,
            &ctx,
        );
    }
}

/// Closed-loop round trip: the memory-system model (cores, MSHRs, pending
/// bank replies, think-time RNG) snapshots and restores byte-identically.
#[test]
fn closed_loop_round_trip() {
    let cfg = NetworkConfig::paper_3x3();
    for m in 0..5 {
        let (mname, factory) = mechanism(m);
        let network = Network::new(cfg.clone(), factory.as_ref(), 7).expect("valid config");
        let traffic = ClosedLoopTraffic::new(workloads::water(), 9, 7);
        let mut original = Simulation::new(network, traffic);
        original.run(2_000);
        let snap = original.snapshot().expect("snapshot");

        let network = Network::new(cfg.clone(), factory.as_ref(), 7).expect("valid config");
        let traffic = ClosedLoopTraffic::new(workloads::water(), 9, 7);
        let mut restored = Simulation::new(network, traffic);
        restored.restore(&snap, "<memory>").expect("restore");

        original.run(2_000);
        restored.run(2_000);
        assert_eq!(
            original.traffic.completed(),
            restored.traffic.completed(),
            "{mname}: completed-transaction counts diverged"
        );
        assert_eq!(
            original.traffic.issued(),
            restored.traffic.issued(),
            "{mname}: issued-transaction counts diverged"
        );
        let a = original.snapshot().expect("final snapshot");
        let b = restored.snapshot().expect("final snapshot");
        assert_eq!(a, b, "{mname}: closed-loop state diverged after restore");
    }
}

/// A restored simulation refuses bytes from a different context: flipping
/// payload bits trips the checksum, and a snapshot from one mechanism or
/// mesh will not load into another.
#[test]
fn restore_rejects_corrupt_and_mismatched_snapshots() {
    let cfg = NetworkConfig::paper_3x3();
    let (_, afc) = mechanism(3);
    let mut sim = open_loop_sim(&cfg, afc.as_ref(), Pattern::UniformRandom, 0.1, 1, false);
    sim.run(100);
    let snap = sim.snapshot().expect("snapshot");

    // Bit-flip in the payload: checksum failure naming the origin.
    let mut corrupt = snap.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    let err = sim.restore(&corrupt, "corrupt.bin").unwrap_err();
    assert!(
        matches!(err, SnapshotError::ChecksumMismatch { .. }),
        "expected checksum mismatch, got {err}"
    );
    assert!(
        err.to_string().contains("corrupt.bin"),
        "error must name the corrupt file: {err}"
    );

    // Mechanism mismatch.
    let (_, bp) = mechanism(0);
    let mut other = open_loop_sim(&cfg, bp.as_ref(), Pattern::UniformRandom, 0.1, 1, false);
    let err = other.restore(&snap, "<memory>").unwrap_err();
    assert!(
        matches!(err, SnapshotError::ContextMismatch { .. }),
        "expected context mismatch, got {err}"
    );

    // Mesh-shape mismatch.
    let wide = NetworkConfig {
        width: 4,
        height: 2,
        ..NetworkConfig::paper_3x3()
    };
    let mut other = open_loop_sim(&wide, afc.as_ref(), Pattern::UniformRandom, 0.1, 1, false);
    let err = other.restore(&snap, "<memory>").unwrap_err();
    assert!(
        matches!(err, SnapshotError::ContextMismatch { .. }),
        "expected context mismatch, got {err}"
    );

    // The pristine snapshot still loads fine afterwards.
    sim.restore(&snap, "<memory>").expect("pristine restore");
}
