//! Quickstart: build the paper's 3x3 network under each flow-control
//! mechanism, run the low-load `water` and high-load `apache` workloads,
//! and print performance and energy side by side.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use afc_noc::prelude::*;

fn main() -> Result<(), ConfigError> {
    let cfg = NetworkConfig::paper_3x3();
    let model = EnergyModel::new(EnergyParams::micro2010_70nm());
    let factories: Vec<(&str, Box<dyn afc_netsim::router::RouterFactory>)> = vec![
        ("backpressured", Box::new(BackpressuredFactory::new())),
        ("backpressureless", Box::new(DeflectionFactory::new())),
        ("afc", Box::new(AfcFactory::paper())),
    ];

    for workload in [workloads::water(), workloads::apache()] {
        println!(
            "== {} (paper injection rate {:.2} flits/node/cycle) ==",
            workload.name, workload.paper_injection_rate
        );
        let mut baseline_cycles = None;
        let mut baseline_energy = None;
        for (label, factory) in &factories {
            let out = run_closed_loop(
                factory.as_ref(),
                &cfg,
                workload,
                200, // warmup transactions
                800, // measured transactions
                20_000_000,
                42,
            )?;
            let energy = model.price_network(&out.network);
            let base_c = *baseline_cycles.get_or_insert(out.measured_cycles);
            let base_e = *baseline_energy.get_or_insert(energy.total());
            println!(
                "  {label:<17} cycles {:>7}  perf x{:.2}  energy x{:.2}  \
                 inj {:.2} fl/node/cyc  backpressured {:.0}%",
                out.measured_cycles,
                base_c as f64 / out.measured_cycles as f64,
                energy.total() / base_e,
                out.injection_rate(),
                out.stats.backpressured_fraction() * 100.0,
            );
        }
        println!();
    }
    println!(
        "AFC tracks the better mechanism in both regimes: bufferless energy at low\n\
         load, backpressured performance and energy at high load."
    );
    Ok(())
}
