//! Self-healing timeline: kill → degrade → heal → recover.
//!
//! For each of the four flow-control mechanisms the run injects open-loop
//! uniform-random traffic on an 8x8 mesh, severs every link of a central
//! node mid-run, revives them a few thousand cycles later, and samples
//! delivered flits per window to build a throughput timeline. Three phase
//! averages summarise the curve:
//!
//! * **pre-fault** — steady state before the kill,
//! * **degraded**  — after fault detection, while the repair plane routes
//!   around the hole and the NI retransmits into it,
//! * **healed**    — after revival gossip reconverges and the credit
//!   re-sync handshake restores the revived links' flow control.
//!
//! The headline figure is the recovery ratio `healed / pre-fault`; the
//! self-healing contract (DESIGN.md §15) targets >= 95% for every
//! mechanism. Writes machine-readable `results/BENCH_healing.json` next to
//! the other benchmark artifacts.

use afc_bench::mechanisms::Mechanism;
use afc_bench::report::{percent, Table};
use afc_core::AfcFactory;
use afc_netsim::config::{NetworkConfig, RetransmitConfig};
use afc_netsim::faults::FaultPlan;
use afc_netsim::geom::Coord;
use afc_netsim::network::Network;
use afc_netsim::sim::Simulation;
use afc_routers::{BackpressuredFactory, DeflectionFactory, DropFactory};
use afc_traffic::openloop::{OpenLoopTraffic, PacketMix, RateSpec};
use afc_traffic::synthetic::Pattern;

/// The four routers of the paper's comparison, in figure order.
fn healing_mechanisms() -> Vec<Mechanism> {
    vec![
        Mechanism {
            label: "backpressured",
            factory: Box::new(BackpressuredFactory::new()),
        },
        Mechanism {
            label: "backpressureless",
            factory: Box::new(DeflectionFactory::new()),
        },
        Mechanism {
            label: "drop",
            factory: Box::new(DropFactory::new()),
        },
        Mechanism {
            label: "afc",
            factory: Box::new(AfcFactory::paper()),
        },
    ]
}

/// One mechanism's measured timeline and phase summary.
struct HealingRow {
    label: &'static str,
    pre: f64,
    degraded: f64,
    healed: f64,
    links_failed: u64,
    links_revived: u64,
    reroutes: u64,
    outcome: String,
    /// `(window_end_cycle, flits_delivered_in_window)` samples.
    timeline: Vec<(u64, u64)>,
}

impl HealingRow {
    fn recovery_ratio(&self) -> f64 {
        self.healed / self.pre.max(1e-12)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    afc_bench::sweep::parse_threads_arg_or_exit(&args);
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);

    // Timeline geometry. The settle margin after each transition keeps the
    // phase averages clear of the detection delay, the gossip wavefront,
    // and the post-heal backlog drain spike.
    let (kill_at, revive_at, inject, drain) = if quick {
        (1_500u64, 4_000u64, 8_000u64, 100_000u64)
    } else {
        (3_000u64, 9_000u64, 18_000u64, 400_000u64)
    };
    const WINDOW: u64 = 250;
    let settle = if quick { 750 } else { 1_500 };

    println!("Self-healing timeline: 8x8 mesh, uniform random load 0.10, seed {seed}");
    println!(
        "node 3,3 loses all four links at cycle {kill_at}, revived at cycle {revive_at}; \
         injection stops at {inject}\n"
    );

    let mechs = healing_mechanisms();
    let jobs: Vec<usize> = (0..mechs.len()).collect();
    let rows: Vec<HealingRow> = afc_bench::sweep::run_sweep("healing", &jobs, |_, &mi| {
        let m = &mechs[mi];
        let cfg = NetworkConfig {
            retransmit: Some(RetransmitConfig {
                timeout: 300,
                backoff_cap: 2,
                max_attempts: 0,
            }),
            ..NetworkConfig::paper_8x8()
        };
        let mesh = cfg.mesh().expect("valid 8x8 mesh");
        let hub = mesh.node_at(Coord::new(3, 3)).expect("3,3 in 8x8");
        let cfg = NetworkConfig {
            faults: FaultPlan::none()
                .kill_node(hub, kill_at)
                .revive_node(hub, revive_at),
            ..cfg
        };
        let network = Network::new(cfg, m.factory.as_ref(), seed).expect("valid configuration");
        let traffic = OpenLoopTraffic::new(
            RateSpec::Uniform(0.10),
            Pattern::UniformRandom,
            PacketMix::paper(),
            seed,
        );
        let mut sim = Simulation::new(network, traffic);

        let mut timeline: Vec<(u64, u64)> = Vec::new();
        let mut last_delivered = 0u64;
        let mut error = None;
        while sim.network.now() < inject {
            if let Err(e) = sim.try_run(WINDOW) {
                error = Some(e);
                break;
            }
            let delivered = sim.network.stats().flits_delivered;
            timeline.push((sim.network.now(), delivered - last_delivered));
            last_delivered = delivered;
        }
        let outcome = match &error {
            Some(e) => format!("ERROR: {e}"),
            None => {
                sim.traffic.stop();
                match sim.try_drain(drain) {
                    Ok(true) => "drained".to_string(),
                    Ok(false) => "drain budget exhausted".to_string(),
                    Err(e) => format!("ERROR: {e}"),
                }
            }
        };

        // Phase average: mean flits/cycle over whole windows inside
        // [from, to). The first pre-fault window is warmup and skipped.
        let phase_mean = |from: u64, to: u64| -> f64 {
            let windows: Vec<&(u64, u64)> = timeline
                .iter()
                .filter(|(end, _)| *end > from + WINDOW && *end <= to)
                .collect();
            if windows.is_empty() {
                return 0.0;
            }
            let flits: u64 = windows.iter().map(|(_, d)| d).sum();
            flits as f64 / (windows.len() as u64 * WINDOW) as f64
        };
        let s = sim.network.stats();
        HealingRow {
            label: m.label,
            pre: phase_mean(WINDOW, kill_at),
            degraded: phase_mean(kill_at + settle, revive_at),
            healed: phase_mean(revive_at + settle, inject),
            links_failed: s.links_failed,
            links_revived: s.links_revived,
            reroutes: sim.network.total_counters().reroutes,
            outcome,
            timeline,
        }
    });

    let mut t = Table::new(vec![
        "mechanism",
        "pre-fault fl/cy",
        "degraded fl/cy",
        "healed fl/cy",
        "recovery",
        "killed/revived",
        "reroutes",
        "outcome",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    let mut worst: Option<(&str, f64)> = None;
    for r in &rows {
        let ratio = r.recovery_ratio();
        if worst.is_none_or(|(_, w)| ratio < w) {
            worst = Some((r.label, ratio));
        }
        t.row(vec![
            r.label.to_string(),
            format!("{:.3}", r.pre),
            format!("{:.3}", r.degraded),
            format!("{:.3}", r.healed),
            percent(ratio),
            format!("{}/{}", r.links_failed, r.links_revived),
            r.reroutes.to_string(),
            r.outcome.clone(),
        ]);
        let samples: Vec<String> = r
            .timeline
            .iter()
            .map(|(end, d)| format!("[{end}, {d}]"))
            .collect();
        json_rows.push(format!(
            "    {{\"mechanism\": \"{}\", \"pre_fault_throughput\": {:.4}, \
             \"degraded_throughput\": {:.4}, \"healed_throughput\": {:.4}, \
             \"recovery_ratio\": {:.4}, \"links_failed\": {}, \"links_revived\": {}, \
             \"reroutes\": {}, \"outcome\": \"{}\", \"timeline\": [{}]}}",
            r.label,
            r.pre,
            r.degraded,
            r.healed,
            r.recovery_ratio(),
            r.links_failed,
            r.links_revived,
            r.reroutes,
            r.outcome,
            samples.join(", "),
        ));
    }
    println!("{}", t.render());
    let (worst_label, worst_ratio) = worst.expect("at least one mechanism");
    println!(
        "worst recovery: {worst_label} at {} (target >= 95%)",
        percent(worst_ratio)
    );

    let json = format!(
        "{{\n  \"bench\": \"healing\",\n  \"mesh\": \"8x8\",\n  \"rate\": 0.10,\n  \
         \"kill_at\": {kill_at},\n  \"revive_at\": {revive_at},\n  \
         \"inject_cycles\": {inject},\n  \"window\": {WINDOW},\n  \"seed\": {seed},\n  \
         \"quick\": {quick},\n  \"worst_recovery_ratio\": {worst_ratio:.4},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let json_path = root.join("results").join("BENCH_healing.json");
    afc_bench::sweep::write_atomic(&json_path, json.as_bytes()).expect("writable results dir");
    println!("(wrote {})", json_path.display());
}
