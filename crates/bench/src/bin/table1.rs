//! Table I (router pipeline stages) and Tables II-IV (configurations),
//! printed from the code's actual constants so drift is impossible.
//!
//! Each table renders as an independent job on the sweep engine; output
//! order is fixed by the spec regardless of `--threads`.

use afc_bench::report::Table;
use afc_bench::sweep;
use afc_core::AfcConfig;
use afc_netsim::channel::Channel;
use afc_netsim::config::NetworkConfig;
use afc_traffic::workloads;

fn table_pipelines() -> String {
    let mut out = String::from("Table I: router pipeline stages (all mechanisms are 2-stage)\n\n");
    let mut t = Table::new(vec!["flow control", "stage 1", "stage 2", "link traversal"]);
    t.row(vec![
        "backpressured".into(),
        "SA (PV->P), LAR parallel, 0-cycle VCA".into(),
        "ST + partial LT".into(),
        "partial LT + input BW".into(),
    ]);
    t.row(vec![
        "backpressureless".into(),
        "R + SA (P->P)".into(),
        "ST + partial LT".into(),
        "partial LT + latch write".into(),
    ]);
    t.row(vec![
        "AFC (backpressureless mode)".into(),
        "R + SA (P->P)".into(),
        "ST + partial LT".into(),
        "partial LT + latch write".into(),
    ]);
    t.row(vec![
        "AFC (backpressured mode)".into(),
        "SA (PV->P), LAR parallel".into(),
        "ST + partial LT".into(),
        "partial LT + lazy VCA at input BW".into(),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "Simulator realization: per-hop latency = 2 + L cycles (channel forward delay {} for L = 2).\n\n",
        Channel::new(2).forward_delay()
    ));
    out
}

fn table_machine() -> String {
    let mut out = String::from("Table II: simulated machine configuration\n\n");
    let cfg = NetworkConfig::paper_3x3();
    let afc = AfcConfig::paper();
    let mut t = Table::new(vec!["parameter", "value"]);
    t.row(vec![
        "network".into(),
        format!(
            "{}x{} mesh, {}-cycle links",
            cfg.width, cfg.height, cfg.link_latency
        ),
    ]);
    t.row(vec![
        "virtual networks".into(),
        format!(
            "{} ({} VCs total per port)",
            cfg.vnet_count(),
            cfg.total_vcs_per_port()
        ),
    ]);
    t.row(vec![
        "baseline buffers".into(),
        format!(
            "{} flits/port (8-flit deep VCs)",
            cfg.buffer_flits_per_port()
        ),
    ]);
    t.row(vec![
        "AFC buffers (lazy VCs)".into(),
        format!(
            "{} flits/port ({}+{}+{} one-flit VCs)",
            afc.buffer_flits_per_port(&cfg),
            afc.control_vcs,
            afc.control_vcs,
            afc.data_vcs
        ),
    ]);
    t.row(vec![
        "flit widths (bits)".into(),
        format!(
            "{} backpressured / {} backpressureless / {} AFC",
            afc_routers::backpressured::FLIT_WIDTH_BITS,
            afc_routers::deflection::FLIT_WIDTH_BITS,
            afc_core::router::FLIT_WIDTH_BITS
        ),
    ]);
    t.row(vec![
        "AFC thresholds (fwd/rev)".into(),
        format!(
            "corner {:?}, edge {:?}, center {:?}",
            afc.thresholds.corner, afc.thresholds.edge, afc.thresholds.center
        ),
    ]);
    t.row(vec![
        "EWMA".into(),
        format!(
            "weight {} over a {}-cycle load window",
            afc.ewma_weight, afc.load_window
        ),
    ]);
    t.row(vec![
        "gossip threshold X".into(),
        format!(
            "{} (2L + 2)",
            afc.effective_gossip_threshold(cfg.link_latency)
        ),
    ]);
    out.push_str(&t.render());
    out.push('\n');
    out
}

fn table_workloads() -> String {
    let mut out = String::from("Table III: workloads (calibrated closed-loop presets)\n\n");
    let mut t = Table::new(vec![
        "workload",
        "class",
        "threads/node",
        "think (cyc)",
        "L2 miss",
        "writeback",
        "paper inj. rate",
    ]);
    for w in workloads::all() {
        let class = if w.paper_injection_rate > 0.5 {
            "high"
        } else {
            "low"
        };
        t.row(vec![
            w.name.into(),
            class.into(),
            w.threads.to_string(),
            format!("{:.0}", w.think_mean),
            format!("{:.2}", w.l2_miss_rate),
            format!("{:.2}", w.writeback_rate),
            format!("{:.2}", w.paper_injection_rate),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("(run the `calibrate` binary for measured vs. paper injection rates)\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    sweep::parse_threads_arg_or_exit(&args);
    let sections = sweep::run_sweep("table1-sections", &[0usize, 1, 2], |_, &i| match i {
        0 => table_pipelines(),
        1 => table_machine(),
        2 => table_workloads(),
        _ => unreachable!(),
    });
    for s in &sections {
        print!("{s}");
    }
    let timing = sweep::write_timing_report("table1").expect("writable results dir");
    println!("(timing: {})", timing.display());
}
