//! The **drop-based** backpressureless router (SCARAB style).
//!
//! On contention, all but one of the contending flits are dropped instead of
//! deflected; a NACK returns to the source (modeled by the network engine
//! with distance-proportional latency) and the source retransmits. The paper
//! notes this variant saturates at even lower loads than deflection routing
//! — this implementation exists as the comparison point for that claim.

use afc_netsim::channel::{ControlSignal, Credit};
use afc_netsim::config::NetworkConfig;
use afc_netsim::counters::ActivityCounters;
use afc_netsim::fault_aware::{FaultAwareness, RouteOutcome};
use afc_netsim::flit::{Cycle, Flit};
use afc_netsim::geom::{Direction, NodeId, PortId};
use afc_netsim::rng::SimRng;
use afc_netsim::router::{Router, RouterFactory, RouterMode, RouterOutputs};
use afc_netsim::snapshot::{self, SnapshotError, SnapshotReader, SnapshotWriter};
use afc_netsim::topology::Mesh;

use crate::arbiter::FreeDirs;
use crate::deflection::{split_ejections_into, RankPolicy};

/// Flit width in bits (same control overhead class as the deflection
/// variant).
pub const FLIT_WIDTH_BITS: u32 = 45;

/// The drop router.
pub struct DropRouter {
    node: NodeId,
    mesh: Mesh,
    dirs: Vec<Direction>,
    policy: RankPolicy,
    eject_bandwidth: usize,
    latches: Vec<Flit>,
    /// Fault mask, gossip queue and alive-graph routing table (DESIGN.md
    /// §13); clean-state steps are byte-identical to the fault-free build.
    fa: FaultAwareness,
    counters: ActivityCounters,
}

impl DropRouter {
    /// Builds the router for `node`.
    pub fn new(
        node: NodeId,
        mesh: &Mesh,
        config: &NetworkConfig,
        policy: RankPolicy,
    ) -> DropRouter {
        DropRouter {
            node,
            mesh: mesh.clone(),
            dirs: mesh.neighbor_dirs(node).collect(),
            policy,
            eject_bandwidth: config.eject_bandwidth,
            latches: Vec::with_capacity(8),
            fa: FaultAwareness::new(node, mesh.clone()),
            counters: ActivityCounters::new(),
        }
    }
}

impl Router for DropRouter {
    fn receive_flit(&mut self, _input: PortId, flit: Flit, _now: Cycle) {
        self.latches.push(flit);
        self.counters.latch_writes += 1;
    }

    fn receive_credit(&mut self, _output: PortId, _credit: Credit, _now: Cycle) {}

    fn receive_control(&mut self, _output: PortId, signal: ControlSignal, now: Cycle) {
        if self.fa.on_control(signal, now).is_some() {
            self.counters.fault_notices += 1;
        }
    }

    fn note_link_event(
        &mut self,
        node: NodeId,
        dir: Direction,
        epoch: u32,
        alive: bool,
        now: Cycle,
    ) {
        // Bufferless and creditless: masks and the gossip flood are the
        // whole reaction, for deaths and revivals alike.
        self.fa.learn(node, dir, epoch, alive, now);
    }

    fn injection_ready(&self, _flit: &Flit, _now: Cycle) -> bool {
        // Same free-port gating as the deflection router; a losing injected
        // flit is dropped and NACKed rather than refused.
        let local = self
            .latches
            .iter()
            .filter(|f| f.dest == self.node)
            .count()
            .min(self.eject_bandwidth);
        self.dirs.len().saturating_sub(self.latches.len() - local) >= 1
    }

    fn inject(&mut self, flit: Flit, _now: Cycle) {
        self.latches.push(flit);
        self.counters.latch_writes += 1;
        self.counters.injections += 1;
    }

    fn step(&mut self, _now: Cycle, rng: &mut SimRng, out: &mut RouterOutputs) {
        self.counters.cycles += 1;
        let clean = self.fa.is_clean();
        if self.fa.has_pending_gossip() {
            // Gossip drains even when the fault view is all-alive again:
            // revival facts must keep flooding after the router itself has
            // reconverged to the clean fast path.
            self.fa.drain_gossip(out);
        }
        if self.latches.is_empty() {
            return;
        }
        let before = out.ejected.len();
        split_ejections_into(
            &mut self.latches,
            self.node,
            self.eject_bandwidth,
            &mut out.ejected,
        );
        self.counters.ejections += (out.ejected.len() - before) as u64;

        // Round-trips through a local (borrow split) and comes back with
        // capacity intact: no allocation in steady state.
        let mut flits = std::mem::take(&mut self.latches);
        match self.policy {
            RankPolicy::Random => rng.shuffle(&mut flits),
            RankPolicy::OldestFirst => flits.sort_by_key(|f| (f.injected_at, f.packet, f.seq)),
        }
        // The shared fixed-size free list (at most 4 mesh ports): avoids a
        // heap allocation per router per cycle on the hot arbitration path.
        // Dead links are simply not output ports anymore; SCARAB-style
        // contention for the surviving ports is unchanged.
        let fa = &self.fa;
        let mut free = FreeDirs::fill(self.dirs.iter().copied(), |d| clean || !fa.dead_out(d));
        for mut flit in flits.iter().copied() {
            self.counters.arbitrations += 1;
            let choice = if clean {
                free.first_free(self.mesh.productive_dirs(self.node, flit.dest))
            } else {
                // Degraded mode: follow the alive-graph next hop. A dead,
                // contended, local-overflow or unreachable outcome all take
                // the established drop/NACK path — for an unreachable
                // destination the source NI's bounded retransmit converts
                // the repeated drops into a structured `Unreachable`.
                match self.fa.route(flit.dest) {
                    RouteOutcome::Dir(d) if free.contains(d) => {
                        if !self.mesh.productive_dirs(self.node, flit.dest).contains(d) {
                            self.counters.reroutes += 1;
                        }
                        Some(d)
                    }
                    _ => None,
                }
            };
            match choice {
                Some(dir) => {
                    free.take(dir);
                    flit.hops += 1;
                    self.counters.crossbar_traversals += 1;
                    self.counters.link_traversals += 1;
                    out.flits[PortId::Net(dir)] = Some(flit);
                }
                None => {
                    // Contention (or an unejectable local flit): drop and
                    // let the NACK circuit trigger retransmission.
                    self.counters.drops += 1;
                    self.counters.retransmissions += 1;
                    out.dropped.push(flit);
                }
            }
        }
        flits.clear();
        self.latches = flits;
    }

    fn heap_bytes(&self) -> usize {
        self.dirs.capacity() * std::mem::size_of::<Direction>()
            + self.latches.capacity() * std::mem::size_of::<Flit>()
            + self.fa.heap_bytes()
    }

    fn counters(&self) -> &ActivityCounters {
        &self.counters
    }

    fn counters_mut(&mut self) -> &mut ActivityCounters {
        &mut self.counters
    }

    fn mode(&self) -> RouterMode {
        RouterMode::Backpressureless
    }

    fn occupancy(&self) -> usize {
        self.latches.len()
    }

    fn is_quiescent(&self) -> bool {
        // An idle step is `cycles += 1` and an early return: no RNG, no
        // outputs, nothing `note_idle_cycles`'s default can't replay.
        // Pending fault gossip keeps the router live so the flood drains.
        self.latches.is_empty() && !self.fa.has_pending_gossip()
    }

    fn reset(&mut self) -> bool {
        self.latches.clear();
        self.fa.reset();
        self.counters = ActivityCounters::new();
        true
    }

    fn save_state(&self, w: &mut SnapshotWriter) -> Result<(), SnapshotError> {
        w.put_usize(self.latches.len());
        for f in &self.latches {
            snapshot::write_flit(w, f);
        }
        self.counters.save(w);
        self.fa.save(w);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let n = r.get_usize("drop router latch count")?;
        self.latches.clear();
        for _ in 0..n {
            self.latches.push(snapshot::read_flit(r)?);
        }
        self.counters = ActivityCounters::load(r)?;
        self.fa.load(r)?;
        Ok(())
    }
}

impl std::fmt::Debug for DropRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DropRouter")
            .field("node", &self.node)
            .field("latched", &self.latches.len())
            .finish_non_exhaustive()
    }
}

/// Factory for [`DropRouter`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct DropFactory {
    /// Ranking policy for contention resolution.
    pub policy: RankPolicy,
}

impl DropFactory {
    /// Creates the factory with randomized contention resolution.
    pub fn new() -> DropFactory {
        DropFactory::default()
    }
}

impl RouterFactory for DropFactory {
    fn build(&self, node: NodeId, mesh: &Mesh, config: &NetworkConfig) -> Box<dyn Router> {
        Box::new(DropRouter::new(node, mesh, config, self.policy))
    }

    fn name(&self) -> &'static str {
        "drop"
    }

    fn flit_width_bits(&self) -> u32 {
        FLIT_WIDTH_BITS
    }

    fn buffer_flits_per_port(&self, _config: &NetworkConfig) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_netsim::flit::PacketId;
    use afc_netsim::geom::Coord;

    fn setup() -> (Mesh, NodeId, DropRouter) {
        let config = NetworkConfig::paper_3x3();
        let mesh = config.mesh().unwrap();
        let node = mesh.node_at(Coord::new(1, 1)).unwrap();
        let r = DropRouter::new(node, &mesh, &config, RankPolicy::OldestFirst);
        (mesh, node, r)
    }

    fn flit_to(id: u64, dest: NodeId) -> Flit {
        Flit::test_flit(PacketId(id), NodeId::new(0), dest)
    }

    #[test]
    fn uncontended_flit_proceeds() {
        let (mesh, _node, mut r) = setup();
        let dest = mesh.node_at(Coord::new(1, 0)).unwrap(); // north
        r.receive_flit(PortId::Net(Direction::South), flit_to(1, dest), 0);
        let mut out = RouterOutputs::new();
        let mut rng = SimRng::seed_from(1);
        r.step(0, &mut rng, &mut out);
        assert!(out.flits[PortId::Net(Direction::North)].is_some());
        assert!(out.dropped.is_empty());
    }

    #[test]
    fn contention_drops_loser() {
        let (mesh, _node, mut r) = setup();
        let dest = mesh.node_at(Coord::new(2, 1)).unwrap(); // east only
        let a = flit_to(1, dest); // injected_at 0: oldest, wins under OldestFirst
        let mut b = flit_to(2, dest);
        b.injected_at = 5;
        r.receive_flit(PortId::Net(Direction::West), a, 0);
        r.receive_flit(PortId::Net(Direction::North), b, 0);
        let mut out = RouterOutputs::new();
        let mut rng = SimRng::seed_from(2);
        r.step(0, &mut rng, &mut out);
        let winner = out.flits[PortId::Net(Direction::East)].unwrap();
        assert_eq!(winner.packet, PacketId(1));
        assert_eq!(out.dropped.len(), 1);
        assert_eq!(out.dropped[0].packet, PacketId(2));
        assert_eq!(r.counters().drops, 1);
        // Dropped flits never deflect: no other port used.
        assert_eq!(out.flits_sent(), 1);
    }

    #[test]
    fn local_overflow_is_dropped_not_deflected() {
        let (_mesh, node, mut r) = setup();
        r.receive_flit(PortId::Net(Direction::West), flit_to(1, node), 0);
        r.receive_flit(PortId::Net(Direction::East), flit_to(2, node), 0);
        let mut out = RouterOutputs::new();
        let mut rng = SimRng::seed_from(3);
        r.step(0, &mut rng, &mut out);
        assert_eq!(out.ejected.len(), 1);
        assert_eq!(out.dropped.len(), 1);
        assert_eq!(out.flits_sent(), 0);
    }

    #[test]
    fn factory_metadata() {
        let f = DropFactory::new();
        assert_eq!(f.name(), "drop");
        assert_eq!(f.buffer_flits_per_port(&NetworkConfig::paper_3x3()), 0);
    }
}
