//! `parallel_scaling`: wall-clock scaling of the intra-run parallel cycle
//! engine (DESIGN.md §12) — nanoseconds per simulated cycle at 1/2/4/8
//! worker threads on the paper's 8×8 mesh, for each of the four core
//! mechanisms at a saturating load plus AFC at low load and idle.
//!
//! Results are byte-identical at every thread count (the
//! `parallel_equivalence` suite proves it), so this bench measures *only*
//! wall-clock. Two honesty notes baked into the output:
//!
//! * `host_cores` records the machine's available parallelism. On a
//!   single-core container the multi-thread rows measure barrier/handoff
//!   overhead, not speedup — read them together with `host_cores`.
//! * At idle and very low load the activity gate keeps the engine serial
//!   (stepping a near-empty mesh on several threads would be pure
//!   overhead), so those rows should match the 1-thread rows to within
//!   noise; `parallel_cycles` in each row shows how often the parallel
//!   path actually ran.
//!
//! Writes machine-readable `results/BENCH_parallel.json` next to
//! `BENCH_step.json` so future PRs can track the scaling trajectory.

use afc_bench::microbench;
use afc_bench::MechanismId;
use afc_netsim::config::NetworkConfig;
use afc_netsim::network::Network;
use afc_netsim::sim::Simulation;
use afc_traffic::openloop::{OpenLoopTraffic, PacketMix, RateSpec};
use afc_traffic::synthetic::Pattern;

/// Cycles simulated outside the timed region to reach steady state.
const WARMUP_CYCLES: u64 = 2_000;
/// Cycles per timed repeat (the unit count for ns/cycle).
const MEASURE_CYCLES: u64 = 5_000;
/// Fresh-state repeats per case; fastest is reported.
const REPEATS: u32 = 5;

/// Thread counts swept for every case.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// (mechanism, load label, offered rate). Saturation for all four
/// mechanisms — the regime the parallel engine targets — plus the AFC
/// low-load and idle points to document the activity gate's behavior.
const CASES: [(MechanismId, &str, f64); 6] = [
    (MechanismId::Backpressured, "sat_0.30", 0.30),
    (MechanismId::Backpressureless, "sat_0.30", 0.30),
    (MechanismId::Drop, "sat_0.30", 0.30),
    (MechanismId::Afc, "sat_0.30", 0.30),
    (MechanismId::Afc, "low_0.05", 0.05),
    (MechanismId::Afc, "idle", 0.0),
];

fn make_sim(id: MechanismId, rate: f64, threads: usize) -> Simulation<OpenLoopTraffic> {
    let cfg = NetworkConfig::paper_8x8();
    let network =
        Network::new(cfg, id.mechanism().factory.as_ref(), 0xBEEF).expect("valid 8x8 config");
    let traffic = OpenLoopTraffic::new(
        RateSpec::Uniform(rate),
        Pattern::UniformRandom,
        PacketMix::paper(),
        0xBEEF,
    );
    let mut sim = Simulation::new(network, traffic);
    sim.network.set_sim_threads(threads);
    sim.run(WARMUP_CYCLES);
    sim
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut group = microbench::group("parallel_scaling");
    let mut rows: Vec<String> = Vec::new();

    for (id, load_label, rate) in CASES {
        let mut serial_ns = f64::NAN;
        for threads in THREADS {
            let label = format!("{}/{load_label}/x{threads}", id.label());
            let mut parallel_cycles = 0u64;
            let best = group.bench_units(
                &label,
                MEASURE_CYCLES,
                REPEATS,
                || make_sim(id, rate, threads),
                |sim| {
                    sim.run(MEASURE_CYCLES);
                    parallel_cycles = sim.network.parallel_cycles();
                },
            );
            if threads == 1 {
                serial_ns = best;
            }
            rows.push(format!(
                "    {{\"mechanism\": \"{}\", \"load\": \"{load_label}\", \"rate\": {rate}, \
                 \"threads\": {threads}, \"ns_per_cycle\": {best:.1}, \
                 \"speedup_vs_1t\": {:.3}, \"parallel_cycles\": {parallel_cycles}}}",
                id.label(),
                serial_ns / best,
            ));
        }
    }
    group.finish();

    let json = format!(
        "{{\n  \"bench\": \"parallel_scaling\",\n  \"mesh\": \"8x8\",\n  \
         \"host_cores\": {host_cores},\n  \"warmup_cycles\": {WARMUP_CYCLES},\n  \
         \"measure_cycles\": {MEASURE_CYCLES},\n  \"repeats\": {REPEATS},\n  \
         \"unit\": \"ns_per_cycle\",\n  \"cases\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    // `cargo bench` runs with cwd = the package dir; anchor the artifact
    // at the workspace root next to the other `results/` outputs.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let out = root.join("results").join("BENCH_parallel.json");
    afc_bench::sweep::write_atomic(&out, json.as_bytes()).expect("writable results dir");
    println!("\nwrote {} (host_cores={host_cores})", out.display());
}
