//! Technology parameters for the energy model.
//!
//! The constants are calibrated for the paper's evaluation point — 70 nm,
//! 1.0 V, 3 GHz, 2.5 mm links (Section IV) — in the same spirit as Orion:
//! per-event dynamic energies scale linearly with flit width, and leakage
//! scales with instantiated buffer bits. Absolute joules are approximate;
//! the *ratios* between components (buffer vs. link vs. crossbar vs.
//! leakage) are tuned so that the backpressured baseline's buffer share of
//! network energy lands in the 30-40% band the paper reports, and static
//! power dominates dynamic power at low loads.

/// Per-event and leakage energy constants.
///
/// Dynamic entries are in picojoules per bit per event (multiplied by the
/// mechanism's flit width); fixed-cost entries are picojoules per event;
/// leakage entries are picojoules per cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Buffer (SRAM) write, pJ/bit.
    pub buffer_write_per_bit: f64,
    /// Buffer (SRAM) read, pJ/bit.
    pub buffer_read_per_bit: f64,
    /// Pipeline-latch write (backpressureless input path), pJ/bit.
    pub latch_write_per_bit: f64,
    /// Crossbar traversal, pJ/bit.
    pub crossbar_per_bit: f64,
    /// Link traversal over the full 2.5 mm span, pJ/bit.
    pub link_per_bit: f64,
    /// One arbitration operation, pJ.
    pub arbitration: f64,
    /// One credit transfer on the reverse wires, pJ.
    pub credit: f64,
    /// One transition on the credit-tracking control line, pJ.
    pub control: f64,
    /// Buffer access energy scales with SRAM array size:
    /// `(flits_per_port / reference)^exponent` multiplies the per-bit
    /// read/write costs. This is what lets AFC's halved buffers (32 vs. 64
    /// flits per port) compensate for its wider flits, as the paper argues
    /// in Section III-E.
    pub buffer_access_size_exponent: f64,
    /// Reference buffer size (flits per port) at which the per-bit access
    /// costs apply unscaled.
    pub buffer_access_reference_flits: f64,
    /// Buffer leakage, pJ per bit per cycle.
    pub buffer_leak_per_bit_cycle: f64,
    /// Non-buffer router leakage (crossbar, allocators, links), pJ per
    /// router per cycle.
    pub router_leak_per_cycle: f64,
    /// Fraction of buffer leakage eliminated while power-gated (paper
    /// assumes 90% effective gating).
    pub gating_effectiveness: f64,
}

impl EnergyParams {
    /// The calibrated 70 nm / 1.0 V / 3 GHz / 2.5 mm-link preset used by
    /// every experiment in this repository.
    pub fn micro2010_70nm() -> EnergyParams {
        EnergyParams {
            buffer_write_per_bit: 0.012,
            buffer_read_per_bit: 0.010,
            latch_write_per_bit: 0.004,
            crossbar_per_bit: 0.024,
            link_per_bit: 0.050,
            arbitration: 0.20,
            credit: 0.05,
            control: 0.05,
            buffer_access_size_exponent: 0.5,
            buffer_access_reference_flits: 64.0,
            buffer_leak_per_bit_cycle: 9.4e-5,
            router_leak_per_cycle: 1.62,
            gating_effectiveness: 0.90,
        }
    }

    /// Checks internal consistency (all nonnegative, gating in `[0, 1]`).
    pub fn is_valid(&self) -> bool {
        let vals = [
            self.buffer_write_per_bit,
            self.buffer_read_per_bit,
            self.latch_write_per_bit,
            self.crossbar_per_bit,
            self.link_per_bit,
            self.arbitration,
            self.credit,
            self.control,
            self.buffer_leak_per_bit_cycle,
            self.router_leak_per_cycle,
            self.buffer_access_size_exponent,
        ];
        vals.iter().all(|v| v.is_finite() && *v >= 0.0)
            && (0.0..=1.0).contains(&self.gating_effectiveness)
            && self.buffer_access_reference_flits > 0.0
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams::micro2010_70nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_is_valid() {
        assert!(EnergyParams::micro2010_70nm().is_valid());
    }

    #[test]
    fn validity_catches_bad_values() {
        let mut p = EnergyParams::micro2010_70nm();
        p.link_per_bit = -1.0;
        assert!(!p.is_valid());
        let mut p = EnergyParams::micro2010_70nm();
        p.gating_effectiveness = 1.5;
        assert!(!p.is_valid());
        let mut p = EnergyParams::micro2010_70nm();
        p.arbitration = f64::NAN;
        assert!(!p.is_valid());
    }

    #[test]
    fn sram_access_costs_more_than_latch() {
        let p = EnergyParams::micro2010_70nm();
        assert!(p.buffer_write_per_bit > p.latch_write_per_bit);
    }
}
