//! Parallel deterministic sweep engine with crash-safe execution.
//!
//! Every paper artifact is a grid of *independent* simulation runs
//! (mechanism × workload × load point × seed). Each run owns a private
//! [`SimRng`](afc_netsim::rng::SimRng) seeded from its spec alone and
//! shares no mutable state with any other run, so the grid is
//! embarrassingly parallel. This module provides the one executor all
//! harness binaries use:
//!
//! - [`run_sweep`] shards a job list across a work-stealing pool of std
//!   threads (no external dependencies) and reassembles results **in spec
//!   order**, so output is bit-identical regardless of thread count.
//! - [`SweepSpec`] / [`RunSpec`] describe a grid declaratively as plain
//!   data, with a canonical serialization ([`SweepResults::serialize`])
//!   used by the determinism regression tests.
//!
//! # Crash safety
//!
//! Three layers make long sweeps survivable:
//!
//! 1. **Panic isolation** — every job runs under
//!    [`std::panic::catch_unwind`] and gets [`JOB_ATTEMPTS`] tries. A job
//!    that panics every time yields a structured [`JobFailure`] in its own
//!    result slot; the pool and every other job are unaffected.
//! 2. **Manifests** — [`SweepSpec::execute_resumable`] records each
//!    completed job in a checksummed JSON manifest ([`SweepManifest`]),
//!    rewritten atomically after every completion, so an interrupted
//!    process resumes exactly the missing jobs (`--resume`).
//! 3. **Atomic artifacts** — [`write_atomic`] writes result files via a
//!    fsynced sibling temp file plus rename, so a crash mid-write never
//!    leaves a torn CSV.
//!
//! # Determinism contract
//!
//! 1. Workers receive disjoint job indices from an atomic cursor; which
//!    worker executes which job is racy, but results land in a slot keyed
//!    by job index, so the reassembled `Vec` is always in spec order.
//! 2. Job closures must be pure functions of `(index, job)` — they must
//!    not read or write state shared with other jobs. All simulator
//!    entropy comes from the per-run seed.
//! 3. Wall-clock timing is observed by the engine (for the per-run timing
//!    report) but never fed back into results.
//!
//! Setting `AFC_SWEEP_SELFCHECK=1` makes [`SweepSpec::execute`] re-run the
//! whole spec serially and assert the serialized results are byte-identical
//! to the parallel run — a cheap way to detect an accidental shared-state
//! leak in a new experiment.
//!
//! Thread count: `--threads N` (via [`parse_threads_arg`]) beats the
//! `AFC_BENCH_THREADS` environment variable, which beats
//! [`std::thread::available_parallelism`].

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::Instant;

use afc_energy::{EnergyModel, EnergyParams};
use afc_netsim::config::{NetworkConfig, RetransmitConfig};
use afc_netsim::faults::FaultPlan;
use afc_netsim::network::Network;
use afc_netsim::snapshot::fnv1a64;
use afc_traffic::closedloop::WorkloadParams;
use afc_traffic::openloop::{PacketMix, RateSpec};
use afc_traffic::runner::{
    run_closed_loop_with, run_fault_scenario_with, run_open_loop_with, WarmStore,
};
use afc_traffic::synthetic::Pattern;

use crate::mechanisms::MechanismId;

/// Explicit `--threads` override; 0 means unset.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Per-run wall-clock records, drained by [`write_timing_report`].
static TIMINGS: Mutex<Vec<TimingRecord>> = Mutex::new(Vec::new());

struct TimingRecord {
    sweep: String,
    run: usize,
    micros: u128,
}

/// Structured errors from the sweep engine's argument parsing, manifest
/// handling, and artifact plumbing. Binaries print these and exit nonzero
/// instead of panicking.
#[derive(Debug)]
pub enum SweepError {
    /// A malformed command-line argument.
    BadArg(String),
    /// A manifest file that exists but cannot be trusted, or does not
    /// match the sweep it is being resumed against.
    Manifest {
        /// The offending manifest file.
        path: PathBuf,
        /// What is wrong with it.
        message: String,
    },
    /// A filesystem operation failed.
    Io {
        /// The path being read or written.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::BadArg(msg) => write!(f, "{msg}"),
            SweepError::Manifest { path, message } => {
                write!(f, "manifest {}: {message}", path.display())
            }
            SweepError::Io { path, source } => write!(f, "{}: {source}", path.display()),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Sets the worker-thread count explicitly (wins over the environment).
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn set_threads(n: usize) {
    assert!(n > 0, "thread count must be at least 1");
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Extracts the value of a `--threads N` argument without applying it.
///
/// # Errors
///
/// [`SweepError::BadArg`] when `--threads` is present without a positive
/// integer value.
pub fn parse_threads_value(args: &[String]) -> Result<Option<usize>, SweepError> {
    let Some(i) = args.iter().position(|a| a == "--threads") else {
        return Ok(None);
    };
    match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
        Some(n) if n > 0 => Ok(Some(n)),
        _ => Err(SweepError::BadArg(
            "--threads requires a positive integer".to_string(),
        )),
    }
}

/// Consumes a `--threads N` argument if present and applies it via
/// [`set_threads`]. Call once from a binary's `main`.
///
/// # Errors
///
/// [`SweepError::BadArg`] when the value is missing or not a positive
/// integer.
pub fn parse_threads_arg(args: &[String]) -> Result<(), SweepError> {
    if let Some(n) = parse_threads_value(args)? {
        set_threads(n);
    }
    Ok(())
}

/// [`parse_threads_arg`] for binary `main`s: prints the error to stderr
/// and exits with status 2 instead of returning it.
pub fn parse_threads_arg_or_exit(args: &[String]) {
    if let Err(e) = parse_threads_arg(args) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

/// Worker-thread count: `--threads` override, then `AFC_BENCH_THREADS`,
/// then the machine's available parallelism.
pub fn threads() -> usize {
    let explicit = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Some(n) = std::env::var("AFC_BENCH_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|n| *n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sweep worker count when each run itself steps on `sim_threads`
/// intra-run worker threads (the parallel cycle engine of DESIGN.md §12).
/// The two levels of parallelism multiply, so the pool divides its budget
/// to keep the total number of live threads near [`threads`]; one worker
/// always survives so the sweep can make progress.
pub fn threads_for_sim(sim_threads: usize) -> usize {
    divide_budget(threads(), sim_threads)
}

/// The arbitration rule behind [`threads_for_sim`], kept pure for testing.
fn divide_budget(budget: usize, sim_threads: usize) -> usize {
    (budget / sim_threads.max(1)).max(1)
}

/// Whether the determinism self-check mode is enabled
/// (`AFC_SWEEP_SELFCHECK=1`).
pub fn selfcheck_enabled() -> bool {
    std::env::var("AFC_SWEEP_SELFCHECK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Attempts per job before a panic is reported as a [`JobFailure`].
pub const JOB_ATTEMPTS: u32 = 2;

/// A job that panicked on every attempt. The pool survives; the failure
/// occupies the job's result slot instead of killing the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Index of the failed job in the job list handed to the pool.
    pub index: usize,
    /// How many times the job was attempted.
    pub attempts: u32,
    /// The (last) panic message.
    pub message: String,
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job {} panicked after {} attempts: {}",
            self.index, self.attempts, self.message
        )
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one job under [`catch_unwind`] with bounded retry.
fn run_guarded<J, R, F>(name: &str, i: usize, job: &J, f: &F) -> Result<R, JobFailure>
where
    F: Fn(usize, &J) -> R + Sync,
{
    let mut last = String::new();
    for attempt in 1..=JOB_ATTEMPTS {
        match catch_unwind(AssertUnwindSafe(|| f(i, job))) {
            Ok(r) => return Ok(r),
            Err(payload) => {
                last = panic_message(payload);
                eprintln!(
                    "warning: sweep '{name}' job {i} panicked \
                     (attempt {attempt}/{JOB_ATTEMPTS}): {last}"
                );
            }
        }
    }
    Err(JobFailure {
        index: i,
        attempts: JOB_ATTEMPTS,
        message: last,
    })
}

/// Runs `f` over every job with [`threads`] workers and returns the
/// results in job order. See the module docs for the determinism contract.
///
/// # Panics
///
/// Panics — only after the pool has finished every other job — if a job
/// fails all its [`JOB_ATTEMPTS`] attempts. Callers that must survive a
/// failing job use [`run_sweep_failable`].
pub fn run_sweep<J, R, F>(name: &str, jobs: &[J], f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    run_sweep_on(name, jobs, &f, threads())
}

/// [`run_sweep`] with an explicit worker count (used by the determinism
/// tests so they need not mutate global state).
///
/// # Panics
///
/// As [`run_sweep`]: a job failing every attempt panics, but only after
/// the pool has completed all other jobs.
pub fn run_sweep_on<J, R, F>(name: &str, jobs: &[J], f: &F, threads: usize) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    run_sweep_failable(name, jobs, f, threads)
        .into_iter()
        .map(|r| r.unwrap_or_else(|fail| panic!("sweep '{name}': {fail}")))
        .collect()
}

/// [`run_sweep_with_progress`] without a progress hook.
pub fn run_sweep_failable<J, R, F>(
    name: &str,
    jobs: &[J],
    f: &F,
    threads: usize,
) -> Vec<Result<R, JobFailure>>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    run_sweep_with_progress(name, jobs, f, threads, |_, _| {})
}

/// The panic-isolating core of the pool: each job runs under
/// [`catch_unwind`] with [`JOB_ATTEMPTS`] tries, and a job that panics
/// every time yields `Err(`[`JobFailure`]`)` in its slot instead of
/// killing the pool. `progress` is invoked on the collector thread as each
/// job finishes (completion order, not spec order); checkpointing callers
/// use it to persist manifests incrementally.
pub fn run_sweep_with_progress<J, R, F, P>(
    name: &str,
    jobs: &[J],
    f: &F,
    threads: usize,
    progress: P,
) -> Vec<Result<R, JobFailure>>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
    P: FnMut(usize, &Result<R, JobFailure>),
{
    let order: Vec<usize> = (0..jobs.len()).collect();
    run_sweep_scheduled(name, jobs, order, 1, f, threads, progress)
}

/// [`run_sweep_with_progress`] with batched, group-aware scheduling: jobs
/// are handed to workers as contiguous batches of a stable permutation
/// sorted by `group` (a [`RunSpec::arena_group`]-style key), so a worker
/// tends to see arena-compatible jobs back to back and its pooled
/// simulation [`Network`] is reset instead of rebuilt. Results are still
/// reassembled into spec-order slots, so output is byte-identical to the
/// ungrouped scheduler at any worker count.
pub fn run_sweep_grouped<J, R, F, K, P>(
    name: &str,
    jobs: &[J],
    group: K,
    f: &F,
    threads: usize,
    progress: P,
) -> Vec<Result<R, JobFailure>>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
    K: Fn(usize, &J) -> u64,
    P: FnMut(usize, &Result<R, JobFailure>),
{
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    // Stable sort: spec order is preserved inside each group, and the
    // group traversal order is a pure function of the keys — scheduling
    // never depends on worker timing.
    order.sort_by_key(|&i| group(i, &jobs[i]));
    let workers = threads.max(1).min(jobs.len().max(1));
    let batch = batch_size(jobs.len(), workers);
    run_sweep_scheduled(name, jobs, order, batch, f, threads, progress)
}

/// Batch width for the grouped scheduler: large enough that a worker
/// amortizes an arena miss over several pool hits, small enough that the
/// tail of the sweep still load-balances across workers.
fn batch_size(jobs: usize, workers: usize) -> usize {
    (jobs / (workers * 4).max(1)).clamp(1, 8)
}

/// The shared scheduler core: an atomic cursor hands out contiguous
/// `batch`-sized windows of `order` (a permutation of job indices),
/// workers report `(index, result)` over a channel, and the collector
/// writes each result into its spec-index slot — output order is spec
/// order by construction, independent of `order`, `batch`, and timing.
fn run_sweep_scheduled<J, R, F, P>(
    name: &str,
    jobs: &[J],
    order: Vec<usize>,
    batch: usize,
    f: &F,
    threads: usize,
    mut progress: P,
) -> Vec<Result<R, JobFailure>>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
    P: FnMut(usize, &Result<R, JobFailure>),
{
    debug_assert_eq!(order.len(), jobs.len());
    let workers = threads.max(1).min(jobs.len());
    if workers <= 1 {
        // Serial path walks the grouped order too (so a single-threaded
        // sweep still reuses its arena), but reassembles in spec order.
        let mut slots: Vec<Option<Result<R, JobFailure>>> = (0..jobs.len()).map(|_| None).collect();
        for &i in &order {
            let start = Instant::now();
            let r = run_guarded(name, i, &jobs[i], f);
            record_timing(name, i, start.elapsed().as_micros());
            progress(i, &r);
            slots[i] = Some(r);
        }
        return slots
            .into_iter()
            .map(|r| r.expect("serial pass visits every job"))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let batch = batch.max(1);
    let (tx, rx) = mpsc::channel();
    let mut slots: Vec<Option<Result<R, JobFailure>>> = (0..jobs.len()).map(|_| None).collect();
    let order = &order;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            scope.spawn(move || 'steal: loop {
                let from = cursor.fetch_add(batch, Ordering::Relaxed);
                if from >= order.len() {
                    break;
                }
                let to = (from + batch).min(order.len());
                for &i in &order[from..to] {
                    let start = Instant::now();
                    let r = run_guarded(name, i, &jobs[i], f);
                    if tx.send((i, r, start.elapsed().as_micros())).is_err() {
                        break 'steal;
                    }
                }
            });
        }
        drop(tx);
        for (i, r, micros) in rx {
            record_timing(name, i, micros);
            progress(i, &r);
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every job index was handed to exactly one worker"))
        .collect()
}

/// Locks the timing registry, recovering from a poisoned lock: a panicking
/// sweep job may cost its own timing record, never the whole report.
fn timings() -> std::sync::MutexGuard<'static, Vec<TimingRecord>> {
    TIMINGS.lock().unwrap_or_else(|e| e.into_inner())
}

fn record_timing(sweep: &str, run: usize, micros: u128) {
    timings().push(TimingRecord {
        sweep: sweep.to_string(),
        run,
        micros,
    });
}

/// Atomically replaces `path` with `contents`: write a sibling temp file,
/// fsync it, and rename over the target, so a crash mid-write leaves
/// either the old artifact or the new one — never a torn file. Parent
/// directories are created as needed.
///
/// # Errors
///
/// [`SweepError::Io`] naming the target path.
pub fn write_atomic(path: &Path, contents: &[u8]) -> Result<(), SweepError> {
    write_atomic_io(path, contents).map_err(|source| SweepError::Io {
        path: path.to_path_buf(),
        source,
    })
}

fn write_atomic_io(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(contents)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Rotated generations of each timing report kept on disk:
/// `<binary>.tsv` is the latest, `<binary>.1.tsv` the previous run, up to
/// `<binary>.{TIMING_REPORT_KEEP}.tsv`; older generations are deleted.
pub const TIMING_REPORT_KEEP: usize = 5;

/// Shifts existing `<binary>[.k].tsv` reports in `dir` up one generation,
/// deleting anything past [`TIMING_REPORT_KEEP`], so repeated bench runs
/// keep a bounded history instead of either clobbering the only report or
/// accreting files forever.
fn rotate_timing_reports(dir: &Path, binary: &str) -> std::io::Result<()> {
    let generation = |k: usize| {
        if k == 0 {
            dir.join(format!("{binary}.tsv"))
        } else {
            dir.join(format!("{binary}.{k}.tsv"))
        }
    };
    let oldest = generation(TIMING_REPORT_KEEP);
    if oldest.exists() {
        std::fs::remove_file(&oldest)?;
    }
    for k in (0..TIMING_REPORT_KEEP).rev() {
        let from = generation(k);
        if from.exists() {
            std::fs::rename(&from, generation(k + 1))?;
        }
    }
    Ok(())
}

/// Writes (and drains) the per-run timing report accumulated by every
/// sweep since the last call, to `results/timing/<binary>.tsv`, rotating
/// prior reports through `<binary>.<k>.tsv` up to [`TIMING_REPORT_KEEP`]
/// generations.
///
/// Wall-clock values are inherently nondeterministic, which is why they
/// live outside the experiment's own `results/` artifacts: byte-identity
/// across thread counts is promised for sweep *results*, not timings.
///
/// # Errors
///
/// Propagates filesystem errors from creating or writing the report.
pub fn write_timing_report(binary: &str) -> std::io::Result<PathBuf> {
    write_timing_report_in(Path::new("results"), binary)
}

/// [`write_timing_report`] against an explicit results root (tests point
/// this at a temp directory to exercise the retention policy).
pub fn write_timing_report_in(results_root: &Path, binary: &str) -> std::io::Result<PathBuf> {
    let dir = results_root.join("timing");
    std::fs::create_dir_all(&dir)?;
    rotate_timing_reports(&dir, binary)?;
    let path = dir.join(format!("{binary}.tsv"));
    let records = std::mem::take(&mut *timings());
    let total_ms = records.iter().map(|r| r.micros).sum::<u128>() as f64 / 1_000.0;
    let mut out = String::new();
    out.push_str("# per-run wall-clock; nondeterministic by nature, not part of the\n");
    out.push_str("# byte-identical sweep results\n");
    out.push_str(&format!("# binary\t{binary}\n# threads\t{}\n", threads()));
    out.push_str("sweep\trun\tmillis\n");
    for r in &records {
        out.push_str(&format!(
            "{}\t{}\t{:.3}\n",
            r.sweep,
            r.run,
            r.micros as f64 / 1_000.0
        ));
    }
    out.push_str(&format!("total\t{}\t{total_ms:.3}\n", records.len()));
    write_atomic_io(&path, out.as_bytes())?;
    Ok(path)
}

// ---------------------------------------------------------------------------
// Simulation arenas and the warm-start snapshot cache
// ---------------------------------------------------------------------------

// Per-worker simulation arena: each sweep worker thread keeps its most
// recently used `Network` here and offers it to the next job. When the
// next job has the same mechanism and configuration (which the grouped
// scheduler arranges), `Network::reset_from_config` reinitializes it in
// place — no allocation, no construction — and the run is byte-identical
// to one on a freshly built network. Worker threads are scoped to one
// sweep, so arenas are reclaimed when the sweep ends.
thread_local! {
    static SIM_POOL: RefCell<Option<Network>> = const { RefCell::new(None) };
}

/// Arena jobs whose pooled network matched the incoming job (reset path).
static POOL_HITS: AtomicU64 = AtomicU64::new(0);
/// Arena jobs that found no compatible pooled network (fresh construction).
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);
/// Warm-cache lookups that found a usable post-warmup snapshot.
static WARM_HITS: AtomicU64 = AtomicU64::new(0);
/// Warm-cache lookups that missed (the warmup was simulated and cached).
static WARM_MISSES: AtomicU64 = AtomicU64::new(0);

/// Whether pooled arenas are in use; `AFC_SWEEP_POOL=0` disables them
/// (every job constructs its network from scratch).
pub fn pool_enabled() -> bool {
    std::env::var("AFC_SWEEP_POOL").map_or(true, |v| v != "0")
}

/// Whether the warm-start snapshot cache is in use; `AFC_SWEEP_WARM_CACHE=0`
/// disables it (every job re-simulates its warmup prefix).
pub fn warm_enabled() -> bool {
    std::env::var("AFC_SWEEP_WARM_CACHE").map_or(true, |v| v != "0")
}

/// Takes this worker's pooled network if it is arena-compatible with the
/// requested mechanism and configuration (same check
/// [`Network::reset_from_config`] enforces). An incompatible arena is
/// dropped — the completed job's network replaces it via [`pool_put`] — so
/// a worker holds at most one network at a time.
fn pool_take(factory_name: &str, cfg: &NetworkConfig) -> Option<Network> {
    let Some(net) = SIM_POOL.with(|p| p.borrow_mut().take()) else {
        // Cold start: this worker has no arena yet.
        POOL_MISSES.fetch_add(1, Ordering::Relaxed);
        return None;
    };
    if net.mechanism() == factory_name && net.config() == cfg {
        POOL_HITS.fetch_add(1, Ordering::Relaxed);
        Some(net)
    } else {
        POOL_MISSES.fetch_add(1, Ordering::Relaxed);
        None
    }
}

/// Returns a finished job's network to this worker's arena slot.
fn pool_put(net: Network) {
    SIM_POOL.with(|p| *p.borrow_mut() = Some(net));
}

/// Drops this worker's pooled arena (tests use it to force cold starts).
pub fn pool_clear() {
    SIM_POOL.with(|p| *p.borrow_mut() = None);
}

/// Cumulative `(arena hits, arena misses, warm hits, warm misses)` across
/// all sweeps in this process. A "hit" means the job reset a pooled
/// network in place / restored a cached warmup snapshot; a "miss" means it
/// constructed / simulated from scratch. First-job cold starts on each
/// worker count as neither (there was no arena to offer).
pub fn pool_stats() -> (u64, u64, u64, u64) {
    (
        POOL_HITS.load(Ordering::Relaxed),
        POOL_MISSES.load(Ordering::Relaxed),
        WARM_HITS.load(Ordering::Relaxed),
        WARM_MISSES.load(Ordering::Relaxed),
    )
}

/// Process-wide warm-start snapshot cache, keyed by
/// [`afc_traffic::runner::warm_key`] — a fingerprint of the full network
/// configuration (mesh, mechanism, fault plan, thresholds), the traffic
/// description, the warmup length, and the seed. Values are sealed
/// [`Simulation::snapshot`](afc_netsim::sim::Simulation::snapshot)
/// containers taken immediately after the warmup phase; a later run with
/// the same key restores the snapshot instead of re-simulating the
/// warmup, and the runner verifies the container checksum and network
/// fingerprint on restore, invalidating the entry on any mismatch.
///
/// The cache is bounded (FIFO eviction once `cap_bytes` is exceeded;
/// default 256 MiB, overridable via `AFC_SWEEP_WARM_CACHE_BYTES`) and can
/// spill to disk: set `AFC_WARM_CACHE_DIR` to a directory and entries are
/// also written there atomically, surviving process crashes — a resumed
/// sweep re-reads them subject to the same checksum/fingerprint
/// verification.
pub struct WarmCache {
    inner: Mutex<WarmCacheInner>,
    cap_bytes: usize,
    disk_dir: Option<PathBuf>,
}

struct WarmCacheInner {
    map: HashMap<u64, Arc<Vec<u8>>>,
    /// Insertion order, for FIFO eviction.
    order: VecDeque<u64>,
    bytes: usize,
}

impl WarmCache {
    /// An empty cache with an explicit byte cap and optional disk spill
    /// directory (tests construct these directly; production code uses
    /// the [`warm_cache`] singleton).
    pub fn with_limits(cap_bytes: usize, disk_dir: Option<PathBuf>) -> WarmCache {
        WarmCache {
            inner: Mutex::new(WarmCacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                bytes: 0,
            }),
            cap_bytes,
            disk_dir,
        }
    }

    fn from_env() -> WarmCache {
        let cap = std::env::var("AFC_SWEEP_WARM_CACHE_BYTES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(256 << 20);
        let dir = std::env::var("AFC_WARM_CACHE_DIR")
            .ok()
            .filter(|v| !v.is_empty())
            .map(PathBuf::from);
        WarmCache::with_limits(cap, dir)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WarmCacheInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn disk_path(&self, key: u64) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("warm-{key:016x}.snap")))
    }

    /// Current `(entries, bytes)` resident in memory.
    pub fn usage(&self) -> (usize, usize) {
        let inner = self.lock();
        (inner.map.len(), inner.bytes)
    }

    /// Empties the in-memory cache (disk spill files are left alone).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.order.clear();
        inner.bytes = 0;
    }
}

impl WarmStore for WarmCache {
    fn get(&self, key: u64) -> Option<Arc<Vec<u8>>> {
        if let Some(bytes) = self.lock().map.get(&key).cloned() {
            WARM_HITS.fetch_add(1, Ordering::Relaxed);
            return Some(bytes);
        }
        // Miss in memory: a crash-surviving spill file may still have it.
        // The runner re-verifies checksum and fingerprint on restore, so a
        // torn or stale file degrades to a re-warmed run, never a wrong one.
        if let Some(path) = self.disk_path(key) {
            if let Ok(bytes) = std::fs::read(&path) {
                let bytes = Arc::new(bytes);
                let mut inner = self.lock();
                inner.bytes += bytes.len();
                inner.order.push_back(key);
                inner.map.insert(key, Arc::clone(&bytes));
                WARM_HITS.fetch_add(1, Ordering::Relaxed);
                return Some(bytes);
            }
        }
        WARM_MISSES.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn put(&self, key: u64, bytes: Vec<u8>) {
        let disk = self.disk_path(key);
        let bytes = Arc::new(bytes);
        {
            let mut inner = self.lock();
            if let Some(old) = inner.map.insert(key, Arc::clone(&bytes)) {
                inner.bytes -= old.len();
                inner.order.retain(|&k| k != key);
            }
            inner.bytes += bytes.len();
            inner.order.push_back(key);
            while inner.bytes > self.cap_bytes && inner.order.len() > 1 {
                let victim = inner.order.pop_front().expect("order non-empty");
                if let Some(old) = inner.map.remove(&victim) {
                    inner.bytes -= old.len();
                }
            }
        }
        if let Some(path) = disk {
            // Spill failures are non-fatal: the in-memory entry still works.
            let _ = write_atomic_io(&path, &bytes);
        }
    }

    fn invalidate(&self, key: u64) {
        {
            let mut inner = self.lock();
            if let Some(old) = inner.map.remove(&key) {
                inner.bytes -= old.len();
                inner.order.retain(|&k| k != key);
            }
        }
        if let Some(path) = self.disk_path(key) {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// The process-wide [`WarmCache`] singleton, configured from the
/// environment on first use.
pub fn warm_cache() -> &'static WarmCache {
    static WARM: OnceLock<WarmCache> = OnceLock::new();
    WARM.get_or_init(WarmCache::from_env)
}

/// One simulation run, described as plain data. Workers rebuild the router
/// factory from the [`MechanismId`], so specs are freely `Clone` + `Send`.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Which router mechanism to run.
    pub mechanism: MechanismId,
    /// The run's private RNG seed.
    pub seed: u64,
    /// The scenario.
    pub kind: RunKind,
}

/// The scenario of a [`RunSpec`].
#[derive(Debug, Clone)]
pub enum RunKind {
    /// Closed-loop workload run ([`run_closed_loop_with`]).
    ClosedLoop {
        /// Workload preset.
        workload: WorkloadParams,
        /// Transactions to complete before measurement starts.
        warmup_txns: u64,
        /// Transactions measured.
        measure_txns: u64,
        /// Abort budget.
        max_cycles: u64,
    },
    /// Open-loop synthetic-traffic run ([`run_open_loop_with`]).
    OpenLoop {
        /// Offered rate, flits/node/cycle.
        rate: f64,
        /// Traffic pattern.
        pattern: Pattern,
        /// Packet-length mix.
        mix: PacketMix,
        /// Warmup cycles.
        warmup_cycles: u64,
        /// Measured cycles.
        measure_cycles: u64,
    },
    /// Fault-injection inject-then-drain run ([`run_fault_scenario_with`]).
    Fault {
        /// Offered rate, flits/node/cycle.
        rate: f64,
        /// Per-flit-hop drop probability.
        drop_rate: f64,
        /// Per-flit-hop corruption probability.
        corrupt_rate: f64,
        /// Cycles of live injection.
        inject_cycles: u64,
        /// Drain budget after sources stop.
        drain_cycles: u64,
    },
}

impl RunSpec {
    /// A short deterministic label: `mechanism/scenario@seed`.
    pub fn label(&self) -> String {
        let scenario = match &self.kind {
            RunKind::ClosedLoop { workload, .. } => workload.name.to_string(),
            RunKind::OpenLoop { rate, .. } => format!("open@{rate:.3}"),
            RunKind::Fault {
                rate, drop_rate, ..
            } => format!("fault@{rate:.3}/{drop_rate:e}"),
        };
        format!("{}/{}@{}", self.mechanism.label(), scenario, self.seed)
    }

    /// Arena-compatibility group key: two runs with the same key (and the
    /// same sweep-level `net_cfg`) build identical networks, so one can
    /// reuse the other's pooled arena via [`Network::reset_from_config`].
    /// Mechanism always discriminates; fault runs additionally fold in the
    /// fault-plan parameters they patch into the configuration.
    pub fn arena_group(&self) -> u64 {
        let detail = match &self.kind {
            RunKind::Fault {
                drop_rate,
                corrupt_rate,
                ..
            } => format!("fault|{drop_rate:?}|{corrupt_rate:?}"),
            RunKind::ClosedLoop { .. } | RunKind::OpenLoop { .. } => String::new(),
        };
        fnv1a64(format!("{}|{detail}", self.mechanism.label()).as_bytes())
    }

    /// Executes the run against `net_cfg` and reduces it to the flat
    /// deterministic metrics of [`RunOutput`], using this worker's pooled
    /// arena and the process-wide warm-start cache unless disabled via
    /// `AFC_SWEEP_POOL=0` / `AFC_SWEEP_WARM_CACHE=0`. Both reuse paths are
    /// byte-identical to cold execution, so results do not depend on pool
    /// or cache state.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or a closed-loop run blows
    /// its cycle budget, mirroring the underlying runners. Inside a sweep
    /// the pool catches the unwind and reports a [`JobFailure`].
    pub fn execute(&self, net_cfg: &NetworkConfig) -> RunOutput {
        self.execute_tuned(net_cfg, pool_enabled(), warm_enabled())
    }

    /// [`RunSpec::execute`] with explicit arena-pool and warm-cache
    /// switches (benchmarks use this to compare fresh, pooled, and
    /// warm-cached execution on identical specs).
    pub fn execute_tuned(&self, net_cfg: &NetworkConfig, pool: bool, warm: bool) -> RunOutput {
        let mechanism = self.mechanism.mechanism();
        let factory = mechanism.factory.as_ref();
        let model = EnergyModel::new(EnergyParams::micro2010_70nm());
        let warm_store: Option<&dyn WarmStore> = if warm { Some(warm_cache()) } else { None };
        match &self.kind {
            RunKind::ClosedLoop {
                workload,
                warmup_txns,
                measure_txns,
                max_cycles,
            } => {
                let arena = if pool {
                    pool_take(factory.name(), net_cfg)
                } else {
                    None
                };
                let out = run_closed_loop_with(
                    arena,
                    warm_store,
                    factory,
                    net_cfg,
                    *workload,
                    *warmup_txns,
                    *measure_txns,
                    *max_cycles,
                    self.seed,
                )
                .expect("valid configuration");
                let output = RunOutput {
                    label: self.label(),
                    cycles: out.measured_cycles,
                    packets_delivered: out.stats.packets_delivered,
                    flits_delivered: out.stats.flits_delivered,
                    injection_rate: out.injection_rate(),
                    throughput: out.stats.throughput(out.network.mesh().node_count()),
                    mean_latency: out.mean_latency(),
                    energy_pj: model.price_network(&out.network).total(),
                    backpressured_fraction: out.stats.backpressured_fraction(),
                    mean_deflections: out.stats.flit_deflections.mean().unwrap_or(0.0),
                    delivered_fraction: delivered_fraction(&out.stats),
                    outcome: "ok".to_string(),
                };
                if pool {
                    pool_put(out.network);
                }
                output
            }
            RunKind::OpenLoop {
                rate,
                pattern,
                mix,
                warmup_cycles,
                measure_cycles,
            } => {
                let arena = if pool {
                    pool_take(factory.name(), net_cfg)
                } else {
                    None
                };
                let out = run_open_loop_with(
                    arena,
                    warm_store,
                    factory,
                    net_cfg,
                    RateSpec::Uniform(*rate),
                    pattern.clone(),
                    *mix,
                    *warmup_cycles,
                    *measure_cycles,
                    self.seed,
                )
                .expect("valid configuration");
                let output = RunOutput {
                    label: self.label(),
                    cycles: out.measured_cycles,
                    packets_delivered: out.stats.packets_delivered,
                    flits_delivered: out.stats.flits_delivered,
                    injection_rate: out.injection_rate(),
                    throughput: out.stats.throughput(out.network.mesh().node_count()),
                    mean_latency: out.mean_latency(),
                    energy_pj: model.price_network(&out.network).total(),
                    backpressured_fraction: out.stats.backpressured_fraction(),
                    mean_deflections: out.stats.flit_deflections.mean().unwrap_or(0.0),
                    delivered_fraction: delivered_fraction(&out.stats),
                    outcome: "ok".to_string(),
                };
                if pool {
                    pool_put(out.network);
                }
                output
            }
            RunKind::Fault {
                rate,
                drop_rate,
                corrupt_rate,
                inject_cycles,
                drain_cycles,
            } => {
                let cfg = NetworkConfig {
                    faults: FaultPlan::uniform_transient(*drop_rate, *corrupt_rate),
                    retransmit: Some(RetransmitConfig::default()),
                    ..net_cfg.clone()
                };
                let arena = if pool {
                    pool_take(factory.name(), &cfg)
                } else {
                    None
                };
                let out = run_fault_scenario_with(
                    arena,
                    factory,
                    &cfg,
                    RateSpec::Uniform(*rate),
                    Pattern::UniformRandom,
                    PacketMix::paper(),
                    *inject_cycles,
                    *drain_cycles,
                    self.seed,
                )
                .expect("valid configuration");
                let outcome = match &out.error {
                    Some(e) => format!("error: {e}"),
                    None if out.drained => "drained".to_string(),
                    None => "drain budget exhausted".to_string(),
                };
                let output = RunOutput {
                    label: self.label(),
                    cycles: out.ran_cycles,
                    packets_delivered: out.stats.packets_delivered,
                    flits_delivered: out.stats.flits_delivered,
                    injection_rate: 0.0,
                    throughput: 0.0,
                    mean_latency: out.stats.network_latency.mean(),
                    energy_pj: model.price_network(&out.network).total(),
                    backpressured_fraction: out.stats.backpressured_fraction(),
                    mean_deflections: out.stats.flit_deflections.mean().unwrap_or(0.0),
                    delivered_fraction: out.delivered_fraction(),
                    outcome,
                };
                if pool {
                    pool_put(out.network);
                }
                output
            }
        }
    }
}

fn delivered_fraction(stats: &afc_netsim::stats::NetworkStats) -> f64 {
    if stats.packets_offered == 0 {
        1.0
    } else {
        stats.packets_delivered as f64 / stats.packets_offered as f64
    }
}

/// The placeholder output of a job that panicked on every attempt: zeroed
/// metrics with the failure recorded in `outcome`.
fn failure_output(spec: &RunSpec, fail: &JobFailure) -> RunOutput {
    RunOutput {
        label: spec.label(),
        cycles: 0,
        packets_delivered: 0,
        flits_delivered: 0,
        injection_rate: 0.0,
        throughput: 0.0,
        mean_latency: None,
        energy_pj: 0.0,
        backpressured_fraction: 0.0,
        mean_deflections: 0.0,
        delivered_fraction: 0.0,
        outcome: format!("panic after {} attempts: {}", fail.attempts, fail.message),
    }
}

/// A declarative grid of independent runs over one network configuration.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Sweep name (used in timing reports and error messages).
    pub name: String,
    /// Network configuration shared by every run.
    pub net_cfg: NetworkConfig,
    /// The runs, in output order.
    pub runs: Vec<RunSpec>,
}

impl SweepSpec {
    /// A stable fingerprint of the full sweep definition (name, network
    /// configuration, and every run spec), used by manifests to refuse
    /// resuming against a different sweep.
    pub fn fingerprint(&self) -> u64 {
        let mut text = String::new();
        text.push_str(&self.name);
        text.push('\n');
        text.push_str(&format!("{:?}\n", self.net_cfg));
        for run in &self.runs {
            text.push_str(&format!("{run:?}\n"));
        }
        fnv1a64(text.as_bytes())
    }

    /// Executes the sweep with [`threads_for_sim`] workers — the global
    /// thread budget divided by the runs' own `sim_threads`, so sweep-level
    /// and intra-run parallelism never oversubscribe the machine together.
    /// When [`selfcheck_enabled`], additionally re-runs serially and
    /// asserts byte-identical results.
    pub fn execute(&self) -> SweepResults {
        let n = threads_for_sim(self.net_cfg.sim_threads);
        let results = self.execute_with_threads(n);
        if selfcheck_enabled() && n > 1 {
            let serial = self.execute_with_threads(1);
            assert_eq!(
                serial.serialize(),
                results.serialize(),
                "sweep '{}' produced thread-count-dependent results — a run \
                 is sharing mutable state",
                self.name
            );
        }
        results
    }

    /// Executes with an explicit worker count. A run that panics on every
    /// attempt becomes a zeroed [`RunOutput`] whose `outcome` records the
    /// failure; the other runs are unaffected.
    pub fn execute_with_threads(&self, threads: usize) -> SweepResults {
        self.execute_with_threads_tuned(threads, pool_enabled(), warm_enabled())
    }

    /// [`SweepSpec::execute_with_threads`] with explicit arena-pool and
    /// warm-cache switches; the `sweep_throughput` benchmark uses this to
    /// time fresh, pooled, and warm-cached execution of identical sweeps
    /// within one process.
    pub fn execute_with_threads_tuned(
        &self,
        threads: usize,
        pool: bool,
        warm: bool,
    ) -> SweepResults {
        let results = run_sweep_grouped(
            &self.name,
            &self.runs,
            |_, run: &RunSpec| run.arena_group(),
            &|_, run: &RunSpec| run.execute_tuned(&self.net_cfg, pool, warm),
            threads,
            |_, _| {},
        );
        let outputs = self
            .runs
            .iter()
            .zip(results)
            .map(|(run, r)| match r {
                Ok(o) => o,
                Err(fail) => failure_output(run, &fail),
            })
            .collect();
        SweepResults { outputs }
    }

    /// Executes the sweep with crash-safe checkpointing: every completed
    /// job is recorded in the manifest at `manifest_path`, rewritten
    /// atomically on each completion. With `resume`, an existing manifest
    /// is loaded first — after verifying its sweep name, fingerprint, and
    /// job count — and only the missing jobs run.
    ///
    /// Jobs that panic on every attempt are reported in their output's
    /// `outcome` field and are **not** recorded in the manifest, so a
    /// later resume retries exactly the failed and missing jobs.
    ///
    /// # Errors
    ///
    /// [`SweepError::Manifest`] for a corrupt or mismatched manifest,
    /// [`SweepError::Io`] for filesystem failures.
    pub fn execute_resumable(
        &self,
        manifest_path: &Path,
        resume: bool,
    ) -> Result<SweepResults, SweepError> {
        let mut manifest = SweepManifest::new(self);
        let mut completed: HashMap<usize, RunOutput> = HashMap::new();
        if resume && manifest_path.exists() {
            let prior = SweepManifest::load(manifest_path)?;
            let mismatch = |message: String| SweepError::Manifest {
                path: manifest_path.to_path_buf(),
                message,
            };
            if prior.sweep != self.name {
                return Err(mismatch(format!(
                    "belongs to sweep {:?}, not {:?}",
                    prior.sweep, self.name
                )));
            }
            if prior.fingerprint != self.fingerprint() || prior.total != self.runs.len() {
                return Err(mismatch(
                    "sweep definition changed since the manifest was written \
                     (fingerprint mismatch); delete the manifest or rerun \
                     without --resume"
                        .to_string(),
                ));
            }
            for (i, line) in &prior.jobs {
                let output =
                    RunOutput::deserialize(line).map_err(|e| mismatch(format!("job {i}: {e}")))?;
                completed.insert(*i, output);
            }
            manifest = prior;
        }

        let missing: Vec<usize> = (0..self.runs.len())
            .filter(|i| !completed.contains_key(i))
            .collect();
        let mut save_err: Option<SweepError> = None;
        let results = run_sweep_grouped(
            &self.name,
            &missing,
            |_, &idx: &usize| self.runs[idx].arena_group(),
            &|_, &idx: &usize| self.runs[idx].execute(&self.net_cfg),
            threads(),
            |k, r| {
                if let Ok(output) = r {
                    manifest.record(missing[k], output);
                    if let Err(e) = manifest.save(manifest_path) {
                        if save_err.is_none() {
                            save_err = Some(e);
                        }
                    }
                }
            },
        );
        if let Some(e) = save_err {
            return Err(e);
        }

        let mut fresh: HashMap<usize, Result<RunOutput, JobFailure>> =
            missing.iter().copied().zip(results).collect();
        let outputs = self
            .runs
            .iter()
            .enumerate()
            .map(|(i, run)| {
                if let Some(done) = completed.remove(&i) {
                    return done;
                }
                match fresh.remove(&i).expect("every missing job ran") {
                    Ok(o) => o,
                    Err(fail) => failure_output(run, &fail),
                }
            })
            .collect();
        Ok(SweepResults { outputs })
    }
}

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// Crash-safe record of which sweep jobs have completed, persisted as a
/// small checksummed JSON file (`results/manifest.json` by convention)
/// after every completion so an interrupted sweep resumes exactly the
/// missing jobs.
///
/// Writes go through [`write_atomic`]; [`SweepManifest::load`] refuses a
/// file whose embedded checksum does not match its contents, naming the
/// corrupt file in the error.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepManifest {
    /// Format version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// Name of the sweep the manifest belongs to.
    pub sweep: String,
    /// [`SweepSpec::fingerprint`] of the sweep definition.
    pub fingerprint: u64,
    /// Total job count in the sweep.
    pub total: usize,
    /// Completed jobs as `(spec index, serialized RunOutput line)`,
    /// sorted by index.
    pub jobs: Vec<(usize, String)>,
}

impl SweepManifest {
    /// An empty manifest for `spec`.
    pub fn new(spec: &SweepSpec) -> SweepManifest {
        SweepManifest {
            version: MANIFEST_VERSION,
            sweep: spec.name.clone(),
            fingerprint: spec.fingerprint(),
            total: spec.runs.len(),
            jobs: Vec::new(),
        }
    }

    /// Records a completed job, keeping the list sorted by index.
    pub fn record(&mut self, index: usize, output: &RunOutput) {
        let line = output.serialize();
        match self.jobs.binary_search_by_key(&index, |(i, _)| *i) {
            Ok(pos) => self.jobs[pos].1 = line,
            Err(pos) => self.jobs.insert(pos, (index, line)),
        }
    }

    /// The byte string the checksum covers: every field and every job
    /// line, in file order.
    fn canonical_body(&self) -> String {
        let mut body = format!(
            "{}\n{}\n{:016x}\n{}\n",
            self.version, self.sweep, self.fingerprint, self.total
        );
        for (i, line) in &self.jobs {
            body.push_str(&format!("{i}\t{line}\n"));
        }
        body
    }

    /// The manifest's JSON encoding (one job object per line).
    pub fn to_json(&self) -> String {
        let checksum = fnv1a64(self.canonical_body().as_bytes());
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"version\": {},\n", self.version));
        out.push_str(&format!("  \"sweep\": \"{}\",\n", json_escape(&self.sweep)));
        out.push_str(&format!(
            "  \"fingerprint\": \"{:016x}\",\n",
            self.fingerprint
        ));
        out.push_str(&format!("  \"total\": {},\n", self.total));
        out.push_str(&format!("  \"checksum\": \"{checksum:016x}\",\n"));
        out.push_str("  \"jobs\": [\n");
        for (k, (i, line)) in self.jobs.iter().enumerate() {
            let comma = if k + 1 == self.jobs.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"index\": {i}, \"output\": \"{}\"}}{comma}\n",
                json_escape(line)
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the manifest atomically.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] naming the manifest path.
    pub fn save(&self, path: &Path) -> Result<(), SweepError> {
        write_atomic(path, self.to_json().as_bytes())
    }

    /// Loads and verifies a manifest written by [`SweepManifest::save`].
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] if the file cannot be read;
    /// [`SweepError::Manifest`] — always naming the file — if it is
    /// malformed, an unsupported version, or fails its checksum.
    pub fn load(path: &Path) -> Result<SweepManifest, SweepError> {
        let text = std::fs::read_to_string(path).map_err(|source| SweepError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let bad = |message: String| SweepError::Manifest {
            path: path.to_path_buf(),
            message,
        };
        let (manifest, stored) = Self::parse(&text).map_err(&bad)?;
        let actual = fnv1a64(manifest.canonical_body().as_bytes());
        if stored != actual {
            return Err(bad(format!(
                "checksum mismatch (file says {stored:016x}, contents hash to \
                 {actual:016x}) — refusing corrupt manifest"
            )));
        }
        Ok(manifest)
    }

    /// Parses the JSON encoding, returning the manifest and its stored
    /// checksum (verified by the caller).
    fn parse(text: &str) -> Result<(SweepManifest, u64), String> {
        let mut version = None;
        let mut sweep = None;
        let mut fingerprint = None;
        let mut total = None;
        let mut checksum = None;
        let mut jobs = Vec::new();
        for raw in text.lines() {
            let line = raw.trim();
            if let Some(v) = line.strip_prefix("\"version\":") {
                version = Some(parse_json_uint(v)? as u32);
            } else if let Some(v) = line.strip_prefix("\"sweep\":") {
                sweep = Some(parse_json_string(v)?);
            } else if let Some(v) = line.strip_prefix("\"fingerprint\":") {
                fingerprint = Some(parse_json_hex(v)?);
            } else if let Some(v) = line.strip_prefix("\"total\":") {
                total = Some(parse_json_uint(v)? as usize);
            } else if let Some(v) = line.strip_prefix("\"checksum\":") {
                checksum = Some(parse_json_hex(v)?);
            } else if line.starts_with("{\"index\":") {
                jobs.push(parse_job_line(line)?);
            }
        }
        let manifest = SweepManifest {
            version: version.ok_or("missing \"version\" field")?,
            sweep: sweep.ok_or("missing \"sweep\" field")?,
            fingerprint: fingerprint.ok_or("missing \"fingerprint\" field")?,
            total: total.ok_or("missing \"total\" field")?,
            jobs,
        };
        let checksum = checksum.ok_or("missing \"checksum\" field")?;
        if manifest.version != MANIFEST_VERSION {
            return Err(format!(
                "unsupported manifest version {} (this build reads version \
                 {MANIFEST_VERSION})",
                manifest.version
            ));
        }
        let mut seen = HashSet::new();
        for (i, _) in &manifest.jobs {
            if *i >= manifest.total {
                return Err(format!(
                    "job index {i} out of range (total {})",
                    manifest.total
                ));
            }
            if !seen.insert(*i) {
                return Err(format!("duplicate job index {i}"));
            }
        }
        Ok((manifest, checksum))
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn json_unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            other => {
                return Err(format!(
                    "bad escape \\{}",
                    other.map(String::from).unwrap_or_default()
                ))
            }
        }
    }
    Ok(out)
}

fn parse_json_uint(v: &str) -> Result<u64, String> {
    let v = v.trim().trim_end_matches(',').trim();
    v.parse::<u64>()
        .map_err(|_| format!("bad integer field {v:?}"))
}

fn parse_json_string(v: &str) -> Result<String, String> {
    let v = v.trim().trim_end_matches(',').trim();
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("bad string field {v:?}"))?;
    json_unescape(inner)
}

fn parse_json_hex(v: &str) -> Result<u64, String> {
    let v = v.trim().trim_end_matches(',').trim();
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("bad hex field {v:?}"))?;
    u64::from_str_radix(inner, 16).map_err(|_| format!("bad hex field {v:?}"))
}

fn parse_job_line(line: &str) -> Result<(usize, String), String> {
    let err = || format!("bad job entry {line:?}");
    let after_idx = line.split_once("\"index\":").ok_or_else(err)?.1;
    let num: String = after_idx
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    let index: usize = num.parse().map_err(|_| err())?;
    let after_out = line.split_once("\"output\":").ok_or_else(err)?.1;
    let after_quote = after_out.trim_start().strip_prefix('"').ok_or_else(err)?;
    let mut raw = String::new();
    let mut chars = after_quote.chars();
    loop {
        match chars.next() {
            None => return Err(err()),
            Some('"') => break,
            Some('\\') => {
                raw.push('\\');
                raw.push(chars.next().ok_or_else(err)?);
            }
            Some(c) => raw.push(c),
        }
    }
    Ok((index, json_unescape(&raw)?))
}

/// Flat deterministic metrics of one run. Every field is a pure function
/// of the spec; see [`RunOutput::serialize`] for the canonical encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// The spec's label.
    pub label: String,
    /// Measured (closed/open loop) or total (fault) cycles.
    pub cycles: u64,
    /// Packets delivered in the window.
    pub packets_delivered: u64,
    /// Flits delivered in the window.
    pub flits_delivered: u64,
    /// Measured injection rate, flits/node/cycle (0 for fault runs).
    pub injection_rate: f64,
    /// Accepted throughput, flits/node/cycle (0 for fault runs).
    pub throughput: f64,
    /// Mean packet network latency, if anything was delivered.
    pub mean_latency: Option<f64>,
    /// Total priced network energy (pJ).
    pub energy_pj: f64,
    /// Fraction of router-cycles spent backpressured.
    pub backpressured_fraction: f64,
    /// Mean deflections per delivered flit.
    pub mean_deflections: f64,
    /// Delivered / offered packets.
    pub delivered_fraction: f64,
    /// Terminal status ("ok", "drained", or an error description).
    pub outcome: String,
}

impl RunOutput {
    /// Canonical tab-separated encoding. Floats use Rust's shortest
    /// round-trip formatting, so equal bytes ⇔ equal bits.
    pub fn serialize(&self) -> String {
        let lat = match self.mean_latency {
            Some(l) => format!("{l:?}"),
            None => "-".to_string(),
        };
        format!(
            "{}\t{}\t{}\t{}\t{:?}\t{:?}\t{}\t{:?}\t{:?}\t{:?}\t{:?}\t{}",
            self.label,
            self.cycles,
            self.packets_delivered,
            self.flits_delivered,
            self.injection_rate,
            self.throughput,
            lat,
            self.energy_pj,
            self.backpressured_fraction,
            self.mean_deflections,
            self.delivered_fraction,
            self.outcome,
        )
    }

    /// Decodes one [`RunOutput::serialize`] line (used by manifest
    /// resume). The last field absorbs any remaining tabs, so outcome
    /// text round-trips verbatim.
    ///
    /// # Errors
    ///
    /// A description of the malformed field.
    pub fn deserialize(line: &str) -> Result<RunOutput, String> {
        let fields: Vec<&str> = line.splitn(12, '\t').collect();
        if fields.len() != 12 {
            return Err(format!(
                "expected 12 tab-separated fields, got {}",
                fields.len()
            ));
        }
        let uint = |s: &str, what: &str| s.parse::<u64>().map_err(|_| format!("bad {what} {s:?}"));
        let float = |s: &str, what: &str| s.parse::<f64>().map_err(|_| format!("bad {what} {s:?}"));
        Ok(RunOutput {
            label: fields[0].to_string(),
            cycles: uint(fields[1], "cycle count")?,
            packets_delivered: uint(fields[2], "packet count")?,
            flits_delivered: uint(fields[3], "flit count")?,
            injection_rate: float(fields[4], "injection rate")?,
            throughput: float(fields[5], "throughput")?,
            mean_latency: if fields[6] == "-" {
                None
            } else {
                Some(float(fields[6], "latency")?)
            },
            energy_pj: float(fields[7], "energy")?,
            backpressured_fraction: float(fields[8], "backpressured fraction")?,
            mean_deflections: float(fields[9], "deflection count")?,
            delivered_fraction: float(fields[10], "delivered fraction")?,
            outcome: fields[11].to_string(),
        })
    }
}

/// Results of a [`SweepSpec`], in spec order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResults {
    /// One output per run, in spec order.
    pub outputs: Vec<RunOutput>,
}

impl SweepResults {
    /// Canonical serialization: header plus one [`RunOutput::serialize`]
    /// line per run. Byte-identical across thread counts.
    pub fn serialize(&self) -> String {
        let mut out = String::from(
            "label\tcycles\tpackets\tflits\tinj_rate\tthroughput\tmean_lat\t\
             energy_pj\tbp_frac\tmean_defl\tdelivered\toutcome\n",
        );
        for o in &self.outputs {
            out.push_str(&o.serialize());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::MechanismId;

    #[test]
    fn timing_reports_rotate_and_cap_retention() {
        let root = std::env::temp_dir().join(format!("afc-timing-rot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let binary = "rotation_probe";
        // KEEP + 3 writes: the oldest two generations must fall off disk.
        let total = TIMING_REPORT_KEEP + 3;
        for g in 0..total {
            timings().push(TimingRecord {
                sweep: format!("gen-{g}"),
                run: g,
                micros: 1,
            });
            write_timing_report_in(&root, binary).expect("write report");
        }
        let dir = root.join("timing");
        let path_for = |k: usize| {
            if k == 0 {
                dir.join(format!("{binary}.tsv"))
            } else {
                dir.join(format!("{binary}.{k}.tsv"))
            }
        };
        // Exactly the latest report plus KEEP rotated generations survive,
        // and generation k holds the write from k runs ago.
        for k in 0..=TIMING_REPORT_KEEP {
            let text = std::fs::read_to_string(path_for(k))
                .unwrap_or_else(|e| panic!("generation {k} missing: {e}"));
            let marker = format!("gen-{}", total - 1 - k);
            assert!(
                text.contains(&marker),
                "generation {k} should hold {marker}: {text}"
            );
        }
        for k in (TIMING_REPORT_KEEP + 1)..(TIMING_REPORT_KEEP + 4) {
            assert!(
                !path_for(k).exists(),
                "generation {k} escaped the retention cap"
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn sweep_preserves_spec_order_at_any_worker_count() {
        let jobs: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = jobs.iter().map(|j| j * j).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = run_sweep_on("order", &jobs, &|_, &j| j * j, workers);
            assert_eq!(got, expect, "worker count {workers}");
        }
    }

    #[test]
    fn thread_budget_divides_between_sweep_and_sim() {
        // The pure arbitration rule (threads_for_sim applies it to the
        // global budget, which other tests mutate concurrently).
        assert_eq!(divide_budget(8, 1), 8);
        assert_eq!(divide_budget(8, 2), 4);
        assert_eq!(divide_budget(8, 3), 2);
        // Sim threads at or beyond the budget: one sweep worker survives.
        assert_eq!(divide_budget(8, 8), 1);
        assert_eq!(divide_budget(8, 64), 1);
        // Degenerate sim_threads=0 behaves like 1.
        assert_eq!(divide_budget(8, 0), 8);
        assert_eq!(divide_budget(1, 4), 1);
        assert!(threads_for_sim(1) >= 1);
    }

    #[test]
    fn sweep_handles_empty_and_singleton_job_lists() {
        let empty: Vec<u64> = Vec::new();
        assert!(run_sweep_on("empty", &empty, &|_, &j: &u64| j, 8).is_empty());
        assert_eq!(run_sweep_on("one", &[7u64], &|_, &j| j + 1, 8), vec![8]);
    }

    #[test]
    fn panicking_job_is_isolated_and_retried() {
        let jobs: Vec<u64> = (0..8).collect();
        for workers in [1, 4] {
            let results = run_sweep_failable(
                "isolated",
                &jobs,
                &|_, &j| {
                    if j == 3 {
                        panic!("job three always explodes");
                    }
                    j * 10
                },
                workers,
            );
            for (i, r) in results.iter().enumerate() {
                if i == 3 {
                    let fail = r.as_ref().unwrap_err();
                    assert_eq!(fail.index, 3);
                    assert_eq!(fail.attempts, JOB_ATTEMPTS);
                    assert!(
                        fail.message.contains("job three always explodes"),
                        "message: {}",
                        fail.message
                    );
                } else {
                    assert_eq!(
                        *r.as_ref().unwrap(),
                        i as u64 * 10,
                        "workers={workers} job {i} must survive a sibling panic"
                    );
                }
            }
        }
    }

    #[test]
    fn transient_panic_succeeds_on_retry() {
        use std::sync::atomic::AtomicU32;
        let attempts = AtomicU32::new(0);
        let jobs = [1u64, 2, 3];
        let results = run_sweep_failable(
            "retry",
            &jobs,
            &|_, &j| {
                if j == 2 && attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("transient");
                }
                j
            },
            1,
        );
        assert_eq!(results[1].as_ref().unwrap(), &2, "retry must recover");
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn progress_hook_sees_every_completion() {
        let jobs: Vec<u64> = (0..12).collect();
        let mut seen = Vec::new();
        let results = run_sweep_with_progress("progress", &jobs, &|_, &j| j, 4, |i, r| {
            assert!(r.is_ok());
            seen.push(i);
        });
        assert_eq!(results.len(), 12);
        seen.sort_unstable();
        assert_eq!(seen, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn threads_value_parsing() {
        let argv = |s: &str| -> Vec<String> { s.split_whitespace().map(String::from).collect() };
        assert_eq!(parse_threads_value(&argv("--quick")).unwrap(), None);
        assert_eq!(parse_threads_value(&argv("--threads 3")).unwrap(), Some(3));
        assert!(parse_threads_value(&argv("--threads")).is_err());
        assert!(parse_threads_value(&argv("--threads zero")).is_err());
        assert!(parse_threads_value(&argv("--threads 0")).is_err());
        let err = parse_threads_arg(&argv("--threads -2")).unwrap_err();
        assert!(err.to_string().contains("positive integer"), "{err}");
    }

    #[test]
    fn write_atomic_replaces_and_creates_dirs() {
        let dir = std::env::temp_dir().join(format!("afc-sweep-atomic-{}", std::process::id()));
        let path = dir.join("nested").join("out.csv");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!path.with_file_name("out.csv.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn sample_output(label: &str, latency: Option<f64>, outcome: &str) -> RunOutput {
        RunOutput {
            label: label.into(),
            cycles: 10_000,
            packets_delivered: 1234,
            flits_delivered: 9876,
            injection_rate: 0.1500000000000001,
            throughput: 0.2,
            mean_latency: latency,
            energy_pj: 1234.5678,
            backpressured_fraction: 0.25,
            mean_deflections: 0.0,
            delivered_fraction: 1.0,
            outcome: outcome.into(),
        }
    }

    #[test]
    fn run_output_serialization_is_exact() {
        let a = sample_output("x", Some(31.5), "ok");
        let mut b = a.clone();
        assert_eq!(a.serialize(), b.serialize());
        // One ULP of difference must change the encoding.
        b.throughput = f64::from_bits(b.throughput.to_bits() + 1);
        assert_ne!(a.serialize(), b.serialize());
    }

    #[test]
    fn run_output_round_trips_through_deserialize() {
        for out in [
            sample_output("afc/open@0.150@7", Some(31.5), "ok"),
            sample_output("bless/fault@0.1/5e-4@1", None, "error: stall at (1,1)"),
            sample_output("drop/water@3", Some(12.25), "drain budget exhausted"),
        ] {
            let line = out.serialize();
            let back = RunOutput::deserialize(&line).unwrap();
            assert_eq!(back, out);
            assert_eq!(back.serialize(), line);
        }
        assert!(RunOutput::deserialize("too\tfew\tfields").is_err());
        assert!(RunOutput::deserialize(
            &sample_output("x", None, "ok")
                .serialize()
                .replace("10000", "ten")
        )
        .is_err());
    }

    fn tiny_spec(seed: u64) -> SweepSpec {
        let runs = [0.05, 0.10, 0.15]
            .iter()
            .map(|&rate| RunSpec {
                mechanism: MechanismId::Afc,
                seed,
                kind: RunKind::OpenLoop {
                    rate,
                    pattern: Pattern::UniformRandom,
                    mix: PacketMix::single_flit(),
                    warmup_cycles: 50,
                    measure_cycles: 100,
                },
            })
            .collect();
        SweepSpec {
            name: "tiny".to_string(),
            net_cfg: NetworkConfig::paper_3x3(),
            runs,
        }
    }

    #[test]
    fn manifest_round_trips_and_refuses_corruption() {
        let spec = tiny_spec(5);
        let mut manifest = SweepManifest::new(&spec);
        manifest.record(2, &sample_output("afc/open@0.150@5", Some(9.5), "ok"));
        manifest.record(
            0,
            &sample_output("afc/open@0.050@5", None, "with\ttab \"quote\"\n"),
        );
        let dir = std::env::temp_dir().join(format!("afc-manifest-{}", std::process::id()));
        let path = dir.join("manifest.json");
        manifest.save(&path).unwrap();
        let loaded = SweepManifest::load(&path).unwrap();
        assert_eq!(loaded, manifest);
        assert_eq!(loaded.jobs[0].0, 0, "jobs stay sorted by index");

        // A flipped byte in the body must be refused, naming the file.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        let err = SweepManifest::load(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("manifest.json"), "must name the file: {msg}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resumable_execution_completes_missing_jobs_only() {
        let spec = tiny_spec(9);
        let dir = std::env::temp_dir().join(format!("afc-resume-{}", std::process::id()));
        let path = dir.join("manifest.json");
        set_threads(2);

        // Uninterrupted reference.
        let reference = spec.execute_with_threads(1).serialize();

        // Fresh resumable run: same bytes, manifest fully populated.
        let results = spec.execute_resumable(&path, false).unwrap();
        assert_eq!(results.serialize(), reference);
        let full = SweepManifest::load(&path).unwrap();
        assert_eq!(full.jobs.len(), spec.runs.len());

        // Simulate an interruption: keep only job 1 in the manifest, then
        // resume. The final bytes must match the uninterrupted reference.
        let mut partial = SweepManifest::new(&spec);
        let kept = RunOutput::deserialize(&full.jobs[1].1).unwrap();
        partial.record(1, &kept);
        partial.save(&path).unwrap();
        let resumed = spec.execute_resumable(&path, true).unwrap();
        assert_eq!(resumed.serialize(), reference);

        // A manifest from a different sweep definition is refused.
        let other = tiny_spec(10);
        let err = other.execute_resumable(&path, true).unwrap_err();
        assert!(
            err.to_string().contains("fingerprint"),
            "expected fingerprint mismatch: {err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn threads_env_and_override_precedence() {
        // No override set by default in this test binary: the value is
        // env- or machine-derived, but always at least 1.
        assert!(threads() >= 1);
    }
}
