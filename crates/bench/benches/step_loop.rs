//! `step_loop`: nanoseconds per simulated cycle of the single-run hot
//! loop (`Network::try_step` plus traffic/injection plumbing), measured
//! end-to-end through [`Simulation::run`].
//!
//! Three operating points per mechanism on the paper's 8×8 mesh:
//!
//! * **idle** — zero offered load; after warmup every component is
//!   quiescent, so this isolates the per-cycle walk/bookkeeping tax.
//! * **low_0.05** — 5% uniform-random load, the regime that dominates
//!   the Figure 2 latency curves (>90% of components idle per cycle).
//! * **sat_0.30** — past saturation for every mechanism; stresses the
//!   full datapath (arbitration, ejection, NACKs for the drop router).
//!
//! A fourth family repeats the saturation point at 32×32 (shorter
//! measurement window — the per-cycle cost is ~16× the 8×8 one), so
//! hot-path wins are also observed at the sizes the parallel engine
//! scaled to.
//!
//! Every case additionally records a per-phase attribution breakdown
//! (router vs channel vs NI vs merge vs other ns/cycle) from a separate
//! pass with [`Network::set_phase_profiling`] enabled. The profiled pass
//! carries a few `Instant` reads per cycle of overhead, so phase values
//! are meaningful as *shares* and may sum slightly above `ns_per_cycle`.
//!
//! Besides the printed table, writes machine-readable
//! `results/BENCH_step.json` (with `host_cores`, like
//! `BENCH_parallel.json`) so future PRs have a perf trajectory. Passing
//! `--json-only` (after `--` under `cargo bench`) suppresses the
//! human-readable report and only regenerates the artifact.

use afc_bench::microbench;
use afc_bench::MechanismId;
use afc_netsim::config::NetworkConfig;
use afc_netsim::network::Network;
use afc_netsim::sim::Simulation;
use afc_traffic::openloop::{OpenLoopTraffic, PacketMix, RateSpec};
use afc_traffic::synthetic::Pattern;

/// Cycles simulated outside the timed region to reach steady state.
const WARMUP_CYCLES: u64 = 2_000;
/// Cycles per timed repeat (the unit count for ns/cycle).
const MEASURE_CYCLES: u64 = 5_000;
/// Fresh-state repeats per case; fastest is reported.
const REPEATS: u32 = 5;
/// Cycles of the separate profiled pass feeding the phase breakdown.
const PROFILE_CYCLES: u64 = 2_000;

/// The 32×32 saturation family costs ~16× per cycle, so it runs a
/// shorter window with fewer repeats to keep the bench inside CI budgets.
const WARMUP_CYCLES_32: u64 = 1_000;
const MEASURE_CYCLES_32: u64 = 2_000;
const REPEATS_32: u32 = 3;
const PROFILE_CYCLES_32: u64 = 1_000;

/// The four mechanisms of the paper's core comparison.
const MECHANISMS: [MechanismId; 4] = [
    MechanismId::Backpressured,
    MechanismId::Backpressureless,
    MechanismId::Drop,
    MechanismId::Afc,
];

/// The three operating points: label and offered load (flits/node/cycle).
const LOADS: [(&str, f64); 3] = [("idle", 0.0), ("low_0.05", 0.05), ("sat_0.30", 0.30)];

#[derive(Clone, Copy)]
enum MeshSize {
    M8,
    M32,
}

impl MeshSize {
    fn label(self) -> &'static str {
        match self {
            MeshSize::M8 => "8x8",
            MeshSize::M32 => "32x32",
        }
    }

    fn config(self) -> NetworkConfig {
        match self {
            MeshSize::M8 => NetworkConfig::paper_8x8(),
            MeshSize::M32 => NetworkConfig {
                width: 32,
                height: 32,
                ..NetworkConfig::paper_8x8()
            },
        }
    }
}

/// Saturating offered rate at 32×32 (uniform-random bisection capacity
/// shrinks as ~4/k flits/node/cycle — same figure `parallel_scaling` uses).
const SAT_RATE_32: f64 = 0.08;

fn make_sim(
    id: MechanismId,
    rate: f64,
    mesh: MeshSize,
    warmup: u64,
) -> Simulation<OpenLoopTraffic> {
    let network =
        Network::new(mesh.config(), id.mechanism().factory.as_ref(), 0xBEEF).expect("valid config");
    let traffic = OpenLoopTraffic::new(
        RateSpec::Uniform(rate),
        Pattern::UniformRandom,
        PacketMix::paper(),
        0xBEEF,
    );
    let mut sim = Simulation::new(network, traffic);
    sim.run(warmup);
    sim
}

/// Runs the separate profiled pass and returns per-phase ns/cycle as
/// `(router, channel, ni, merge, other)`.
fn phase_breakdown(
    id: MechanismId,
    rate: f64,
    mesh: MeshSize,
    warmup: u64,
    cycles: u64,
) -> (f64, f64, f64, f64, f64) {
    let mut sim = make_sim(id, rate, mesh, warmup);
    sim.network.set_phase_profiling(true);
    sim.run(cycles);
    let p = sim.network.phase_profile().expect("profiling enabled");
    let per = |ns: u64| ns as f64 / p.cycles.max(1) as f64;
    (
        per(p.router_ns),
        per(p.channel_ns),
        per(p.ni_ns),
        per(p.merge_ns),
        per(p.other_ns),
    )
}

struct Case {
    mechanism: &'static str,
    mesh: MeshSize,
    load: &'static str,
    rate: f64,
    ns_per_cycle: f64,
    phases: (f64, f64, f64, f64, f64),
}

impl Case {
    fn json(&self) -> String {
        let (router, channel, ni, merge, other) = self.phases;
        format!(
            "    {{\"mechanism\": \"{}\", \"mesh\": \"{}\", \"load\": \"{}\", \
             \"rate\": {}, \"ns_per_cycle\": {:.1}, \"phases_ns_per_cycle\": \
             {{\"router\": {router:.1}, \"channel\": {channel:.1}, \"ni\": {ni:.1}, \
             \"merge\": {merge:.1}, \"other\": {other:.1}}}}}",
            self.mechanism,
            self.mesh.label(),
            self.load,
            self.rate,
            self.ns_per_cycle,
        )
    }
}

fn main() {
    let json_only = std::env::args().any(|a| a == "--json-only");
    let mut group = if json_only {
        microbench::group_quiet("step_loop")
    } else {
        microbench::group("step_loop")
    };
    let mut cases: Vec<Case> = Vec::new();

    for id in MECHANISMS {
        for (load_label, rate) in LOADS {
            let label = format!("{}/{load_label}", id.label());
            let best = group.bench_units(
                &label,
                MEASURE_CYCLES,
                REPEATS,
                || make_sim(id, rate, MeshSize::M8, WARMUP_CYCLES),
                |sim| sim.run(MEASURE_CYCLES),
            );
            cases.push(Case {
                mechanism: id.label(),
                mesh: MeshSize::M8,
                load: load_label,
                rate,
                ns_per_cycle: best,
                phases: phase_breakdown(id, rate, MeshSize::M8, WARMUP_CYCLES, PROFILE_CYCLES),
            });
        }
    }

    // Saturation at 32×32: the size the parallel engine scaled to.
    for id in MECHANISMS {
        let label = format!("{}/sat_0.08/32x32", id.label());
        let best = group.bench_units(
            &label,
            MEASURE_CYCLES_32,
            REPEATS_32,
            || make_sim(id, SAT_RATE_32, MeshSize::M32, WARMUP_CYCLES_32),
            |sim| sim.run(MEASURE_CYCLES_32),
        );
        cases.push(Case {
            mechanism: id.label(),
            mesh: MeshSize::M32,
            load: "sat_0.08",
            rate: SAT_RATE_32,
            ns_per_cycle: best,
            phases: phase_breakdown(
                id,
                SAT_RATE_32,
                MeshSize::M32,
                WARMUP_CYCLES_32,
                PROFILE_CYCLES_32,
            ),
        });
    }
    group.finish();

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let rows: Vec<String> = cases.iter().map(Case::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"step_loop\",\n  \"host_cores\": {host_cores},\n  \
         \"warmup_cycles\": {WARMUP_CYCLES},\n  \"measure_cycles\": {MEASURE_CYCLES},\n  \
         \"repeats\": {REPEATS},\n  \"measure_cycles_32x32\": {MEASURE_CYCLES_32},\n  \
         \"repeats_32x32\": {REPEATS_32},\n  \"unit\": \"ns_per_cycle\",\n  \"cases\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    // `cargo bench` runs with cwd = the package dir; anchor the artifact
    // at the workspace root next to the other `results/` outputs.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let out = root.join("results").join("BENCH_step.json");
    afc_bench::sweep::write_atomic(&out, json.as_bytes()).expect("writable results dir");
    if !json_only {
        println!("\nwrote {}", out.display());
    }
}
