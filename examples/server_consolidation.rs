//! Server-consolidation scenario (the paper's Section V-B motivation): an
//! 8x8 multicore hosting four applications, one per mesh quadrant. One
//! quadrant runs a hot web-serving tier (0.9 flits/node/cycle); the other
//! three idle along at 0.1. Traffic stays within each application's
//! quadrant.
//!
//! Watch AFC partition itself: routers in the hot quadrant switch to
//! backpressured mode while the rest of the chip stays bufferless — and AFC
//! ends up the *best* energy configuration, beating both fixed mechanisms.
//!
//! ```sh
//! cargo run --release --example server_consolidation
//! ```

use afc_noc::prelude::*;
use afc_traffic::synthetic::quadrant_of;

fn main() -> Result<(), ConfigError> {
    let cfg = NetworkConfig::paper_8x8();
    let model = EnergyModel::new(EnergyParams::micro2010_70nm());
    let factories: Vec<(&str, Box<dyn afc_netsim::router::RouterFactory>)> = vec![
        ("backpressured", Box::new(BackpressuredFactory::new())),
        ("backpressureless", Box::new(DeflectionFactory::new())),
        ("afc", Box::new(AfcFactory::paper())),
    ];

    let mesh = cfg.mesh()?;
    let rates: Vec<f64> = mesh
        .nodes()
        .map(|n| if quadrant_of(n, &mesh) == 0 { 0.9 } else { 0.1 })
        .collect();

    let mut results = Vec::new();
    for (label, factory) in &factories {
        let network = Network::new(cfg.clone(), factory.as_ref(), 7)?;
        let traffic = OpenLoopTraffic::new(
            RateSpec::PerNode(rates.clone()),
            Pattern::Quadrant,
            PacketMix::paper(),
            7,
        );
        let mut sim = Simulation::new(network, traffic);
        sim.run(5_000); // warm up
        sim.network.reset_metrics();
        sim.run(20_000); // measure

        let energy = model.price_network(&sim.network);
        results.push((*label, energy.total(), sim.network.stats().clone()));

        if *label == "afc" {
            // Render the chip's mode map: '#' = backpressured router.
            println!("AFC mode map after 25k cycles (quadrant 0 = top-left is hot):");
            let modes = sim.network.modes();
            for y in 0..mesh.height() {
                let row: String = (0..mesh.width())
                    .map(|x| {
                        let n = mesh.node_at(Coord::new(x, y)).expect("in bounds");
                        match modes[n.index()] {
                            afc_netsim::router::RouterMode::Backpressured => '#',
                            afc_netsim::router::RouterMode::Transitioning => '+',
                            afc_netsim::router::RouterMode::Backpressureless => '.',
                        }
                    })
                    .collect();
                println!("  {row}");
            }
            println!();
        }
    }

    let afc_energy = results
        .iter()
        .find(|(l, _, _)| *l == "afc")
        .expect("afc ran")
        .1;
    println!("Energy, normalized to AFC (lower is better):");
    for (label, energy, stats) in &results {
        println!(
            "  {label:<17} x{:.2}   mean packet latency {:>5.0} cycles",
            energy / afc_energy,
            stats.network_latency.mean().unwrap_or(f64::NAN),
        );
    }
    println!(
        "\nWith spatial load variation, neither fixed mechanism is robust —\n\
         AFC adapts per router and wins outright (paper Section V-B)."
    );
    Ok(())
}
