//! Criterion micro-benchmarks for the hot primitives: arbitration, the
//! deflection port-assignment engine, and the PRNG.

use afc_netsim::config::NetworkConfig;
use afc_netsim::flit::{Flit, PacketId};
use afc_netsim::geom::{Coord, NodeId};
use afc_netsim::rng::SimRng;
use afc_routers::arbiter::RoundRobin;
use afc_routers::deflection::{DeflectionEngine, RankPolicy};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");

    group.bench_function("round_robin_grant", |b| {
        let mut arb = RoundRobin::new(8);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(arb.grant(|r| (r as u64 + i) % 3 != 0))
        });
    });

    group.bench_function("deflection_assign_4flits", |b| {
        let cfg = NetworkConfig::paper_3x3();
        let mesh = cfg.mesh().unwrap();
        let node = mesh.node_at(Coord::new(1, 1)).unwrap();
        let engine = DeflectionEngine::new(node, &mesh, RankPolicy::Random);
        let mut rng = SimRng::seed_from(1);
        let flits: Vec<Flit> = (0..4)
            .map(|i| Flit::test_flit(PacketId(i), NodeId::new(0), NodeId::new(8)))
            .collect();
        b.iter(|| black_box(engine.assign(flits.clone(), &[], &mut rng)));
    });

    group.bench_function("rng_next_u64", |b| {
        let mut rng = SimRng::seed_from(2);
        b.iter(|| black_box(rng.next_u64()));
    });

    group.bench_function("rng_gen_bool", |b| {
        let mut rng = SimRng::seed_from(3);
        b.iter(|| black_box(rng.gen_bool(0.3)));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_primitives
}
criterion_main!(benches);
