//! Property-style tests: simulator invariants that must hold for *any*
//! mesh size, seed, load level and mechanism.
//!
//! Formerly driven by `proptest`; rewritten as deterministic seeded sweeps
//! over [`SimRng`]-drawn parameters so the suite builds with no external
//! dependencies (the verify pipeline runs offline). Every case is fully
//! reproducible from its printed seed.
//!
//! The deepest invariant — "credit accounting never overflows a buffer" —
//! is enforced by panics inside the routers themselves, so every property
//! here doubles as a fuzz of those assertions.

use afc_noc::prelude::*;

fn mechanism(idx: usize) -> Box<dyn afc_netsim::router::RouterFactory> {
    match idx % 5 {
        0 => Box::new(BackpressuredFactory::new()),
        1 => Box::new(DeflectionFactory::new()),
        2 => Box::new(DropFactory::new()),
        3 => Box::new(AfcFactory::paper()),
        _ => Box::new(AfcFactory::always_backpressured()),
    }
}

fn small_config(w: u16, h: u16) -> NetworkConfig {
    NetworkConfig {
        width: w,
        height: h,
        ..NetworkConfig::paper_3x3()
    }
}

/// Everything offered below saturation is eventually delivered, exactly
/// once (duplicates panic inside the NI), on any mesh and mechanism.
#[test]
fn conservation_all_offered_packets_are_delivered() {
    for case in 0..12u64 {
        let mut p = SimRng::seed_from(0xC0DE + case);
        let w = 2 + p.gen_range(3) as u16;
        let h = 2 + p.gen_range(3) as u16;
        let mech = p.gen_index(5);
        let seed = p.gen_range(1_000);
        let rate = 0.01 + p.gen_f64() * 0.24;

        let cfg = small_config(w, h);
        let factory = mechanism(mech);
        let network = Network::new(cfg, factory.as_ref(), seed).unwrap();
        let traffic = OpenLoopTraffic::new(
            RateSpec::Uniform(rate),
            Pattern::UniformRandom,
            PacketMix::paper(),
            seed,
        );
        let mut sim = Simulation::new(network, traffic);
        sim.run(3_000);
        sim.traffic.stop();
        assert!(
            sim.drain(500_000),
            "network must drain after sources stop (case {case}: {w}x{h} mech {mech} seed {seed})"
        );
        let stats = sim.network.stats();
        assert_eq!(
            stats.packets_delivered, stats.packets_offered,
            "case {case}: {w}x{h} mech {mech} seed {seed}"
        );
        assert!(sim.network.is_drained());
        sim.network.audit().expect("flit conservation");
        sim.network.credit_audit().expect("credit conservation");
    }
}

/// Closed-loop runs complete their transaction budget with every
/// request matched by exactly one reply, at any load.
#[test]
fn closed_loop_requests_match_replies() {
    for case in 0..10u64 {
        let mut p = SimRng::seed_from(0xB00C + case);
        let mech = p.gen_index(5);
        let seed = p.gen_range(1_000);
        let think = 10.0 + p.gen_f64() * 390.0;
        let threads = 1 + p.gen_index(5);

        let params = WorkloadParams {
            think_mean: think,
            threads,
            ..workloads::barnes()
        };
        let factory = mechanism(mech);
        let out = run_closed_loop(
            factory.as_ref(),
            &NetworkConfig::paper_3x3(),
            params,
            10,
            60,
            10_000_000,
            seed,
        )
        .unwrap();
        assert!(
            out.stats.packets_delivered > 0,
            "case {case}: mech {mech} seed {seed}"
        );
        // Latency statistics are internally consistent.
        let lat = &out.stats.network_latency;
        if let (Some(mean), Some(min), Some(max)) = (lat.mean(), lat.min(), lat.max()) {
            assert!(min as f64 <= mean && mean <= max as f64);
        }
    }
}

/// Deterministic replay: identical seeds give identical statistics.
#[test]
fn identical_seeds_replay_identically() {
    for case in 0..10u64 {
        let mut p = SimRng::seed_from(0x5EED + case);
        let mech = p.gen_index(5);
        let seed = p.gen_range(100);

        let factory = mechanism(mech);
        let run = || {
            let out = run_open_loop(
                factory.as_ref(),
                &NetworkConfig::paper_3x3(),
                RateSpec::Uniform(0.12),
                Pattern::Transpose,
                PacketMix::paper(),
                500,
                1_500,
                seed,
            )
            .unwrap();
            (
                out.stats.flits_delivered,
                out.stats.network_latency.sum(),
                out.counters.link_traversals,
                out.counters.deflections,
            )
        };
        assert_eq!(run(), run(), "case {case}: mech {mech} seed {seed}");
    }
}

/// Delivered-flit hop counts are bounded: at least the Manhattan
/// distance (packets can't teleport), and deflections only ever add
/// hops.
#[test]
fn hops_are_at_least_manhattan_distance() {
    for case in 0..12u64 {
        let mut p = SimRng::seed_from(0x40B5 + case);
        let mech = p.gen_index(5);
        let seed = p.gen_range(1_000);

        let cfg = NetworkConfig::paper_3x3();
        let factory = mechanism(mech);
        let mut net = Network::new(cfg, factory.as_ref(), seed).unwrap();
        let mesh = net.mesh().clone();
        let mut rng = SimRng::seed_from(seed);
        let mut expected = Vec::new();
        for _ in 0..150 {
            let src = NodeId::new(rng.gen_index(mesh.node_count()));
            let mut dest = src;
            while dest == src {
                dest = NodeId::new(rng.gen_index(mesh.node_count()));
            }
            let id = net.offer_packet(
                src,
                afc_netsim::packet::PacketInput {
                    dest,
                    vnet: VirtualNetwork(0),
                    len: 1,
                    kind: afc_netsim::packet::PacketKind::Synthetic,
                    tag: 0,
                },
            );
            expected.push((id, mesh.distance(src, dest)));
        }
        let mut delivered = Vec::new();
        for _ in 0..50_000 {
            net.step();
            delivered.extend(net.take_delivered());
            if delivered.len() == expected.len() {
                break;
            }
        }
        assert_eq!(delivered.len(), expected.len());
        for pkt in delivered {
            let (_, dist) = expected
                .iter()
                .find(|(id, _)| *id == pkt.descriptor.id)
                .expect("delivered packet was offered");
            assert!(pkt.total_hops >= *dist);
            // A flit never takes more hops than distance + 2 * deflections:
            // each deflection costs exactly one off-path hop plus one
            // corrective hop. The seed pinned this with a "+ 1" slack that
            // turned out to be unnecessary — the exact bound holds even
            // under a 150-packet single-cycle burst, so the slack only
            // masked potential off-by-one regressions in deflection
            // accounting. The drop router is exempt: a dropped flit
            // restarts from its source with its hop count preserved, so
            // hops accumulate without deflections.
            if mech % 5 != 2 {
                assert!(
                    pkt.total_hops <= dist + 2 * pkt.total_deflections,
                    "hops {} vs distance {} with {} deflections (case {case})",
                    pkt.total_hops,
                    dist,
                    pkt.total_deflections
                );
            }
        }
    }
}

/// Walking the deterministic XY (and YX) route from any source reaches the
/// destination in exactly the Manhattan distance, never leaving the mesh.
#[test]
fn dor_routes_have_manhattan_length_and_stay_on_mesh() {
    for case in 0..20u64 {
        let mut p = SimRng::seed_from(0x12E0 + case);
        let w = 2 + p.gen_range(6) as u16;
        let h = 2 + p.gen_range(6) as u16;
        let mesh = Mesh::new(w, h).unwrap();
        for _ in 0..30 {
            let src = NodeId::new(p.gen_index(mesh.node_count()));
            let dest = NodeId::new(p.gen_index(mesh.node_count()));
            let dist = mesh.distance(src, dest);
            for route in [Mesh::dor_route, Mesh::dor_route_yx] {
                let mut at = src;
                let mut hops = 0u32;
                while let Some(dir) = route(&mesh, at, dest) {
                    at = mesh
                        .neighbor(at, dir)
                        .expect("route must not step off the mesh");
                    hops += 1;
                    assert!(hops <= dist, "route exceeded Manhattan distance");
                }
                assert_eq!(at, dest, "route must terminate at the destination");
                assert_eq!(hops, dist, "route length must equal Manhattan distance");
            }
        }
    }
}

/// `productive_dirs` is exactly the set of directions that strictly reduce
/// distance: its first entry agrees with XY routing, every member steps to
/// a node one hop closer, and its size matches the number of axes with a
/// nonzero delta.
#[test]
fn productive_dirs_strictly_reduce_distance() {
    for case in 0..20u64 {
        let mut p = SimRng::seed_from(0x9680 + case);
        let w = 2 + p.gen_range(6) as u16;
        let h = 2 + p.gen_range(6) as u16;
        let mesh = Mesh::new(w, h).unwrap();
        for _ in 0..30 {
            let at = NodeId::new(p.gen_index(mesh.node_count()));
            let dest = NodeId::new(p.gen_index(mesh.node_count()));
            let dirs = mesh.productive_dirs(at, dest);
            assert_eq!(dirs.first(), mesh.dor_route(at, dest));
            let (a, b) = (mesh.coord(at), mesh.coord(dest));
            let axes = usize::from(a.x != b.x) + usize::from(a.y != b.y);
            assert_eq!(dirs.len(), axes);
            assert_eq!(dirs.is_empty(), at == dest);
            for dir in dirs.iter() {
                let next = mesh
                    .neighbor(at, dir)
                    .expect("productive direction must stay on the mesh");
                assert_eq!(
                    mesh.distance(next, dest) + 1,
                    mesh.distance(at, dest),
                    "productive step must reduce distance by exactly one"
                );
            }
            // Completeness: any direction not listed fails to reduce
            // distance (or falls off the mesh).
            for dir in Direction::ALL {
                if dirs.contains(dir) {
                    continue;
                }
                if let Some(next) = mesh.neighbor(at, dir) {
                    assert!(mesh.distance(next, dest) >= mesh.distance(at, dest));
                }
            }
        }
    }
}

/// Neighbor, coordinate, direction-index, and port maps are involutive:
/// stepping there and back returns home, `coord`/`node_at` invert each
/// other, and `Direction::{index,from_index,opposite}` round-trip.
#[test]
fn neighbor_and_port_maps_are_involutive() {
    for case in 0..20u64 {
        let mut p = SimRng::seed_from(0x1470 + case);
        let w = 2 + p.gen_range(6) as u16;
        let h = 2 + p.gen_range(6) as u16;
        let mesh = Mesh::new(w, h).unwrap();
        for node in mesh.nodes() {
            assert_eq!(mesh.node_at(mesh.coord(node)), Some(node));
            let mut degree = 0;
            for dir in Direction::ALL {
                assert_eq!(Direction::from_index(dir.index()), Some(dir));
                assert_eq!(dir.opposite().opposite(), dir);
                match mesh.neighbor(node, dir) {
                    Some(next) => {
                        degree += 1;
                        assert_ne!(next, node);
                        assert_eq!(
                            mesh.neighbor(next, dir.opposite()),
                            Some(node),
                            "stepping {dir:?} then back must return home"
                        );
                        assert_eq!(mesh.distance(node, next), 1);
                        // Coord-level stepping agrees with the node map.
                        assert_eq!(mesh.coord(node).step(dir), Some(mesh.coord(next)));
                    }
                    None => {
                        // Off-mesh exactly when the coordinate step leaves
                        // the rectangle.
                        let stays = mesh
                            .coord(node)
                            .step(dir)
                            .is_some_and(|c| mesh.node_at(c).is_some());
                        assert!(!stays, "neighbor map missing an in-bounds edge");
                    }
                }
            }
            assert_eq!(mesh.degree(node), degree);
            assert_eq!(mesh.neighbor_dirs(node).count(), degree);
        }
    }
}

/// AFC under violently varying load never violates its internal credit
/// assertions and still delivers everything (mode-switch safety fuzz).
#[test]
fn afc_mode_churn_is_safe() {
    struct Churn {
        rng: SimRng,
        spike_len: u64,
        hot_fraction: f64,
    }
    impl afc_netsim::sim::TrafficModel for Churn {
        fn pre_cycle(&mut self, now: u64, net: &mut Network) {
            // Alternate hot/cold windows of `spike_len` cycles.
            let hot = (now / self.spike_len).is_multiple_of(2);
            let rate = if hot { 0.8 } else { 0.02 };
            let mesh = net.mesh().clone();
            for node in mesh.nodes() {
                if !self.rng.gen_bool(rate / 3.0) {
                    continue;
                }
                // Concentrate some traffic on the center to force
                // gossip activity.
                let dest = if self.rng.gen_bool(self.hot_fraction) {
                    NodeId::new(4)
                } else {
                    NodeId::new(self.rng.gen_index(mesh.node_count()))
                };
                if dest == node {
                    continue;
                }
                net.offer_packet(
                    node,
                    afc_netsim::packet::PacketInput {
                        dest,
                        vnet: VirtualNetwork((self.rng.gen_index(3)) as u8),
                        len: if self.rng.gen_bool(0.4) { 16 } else { 1 },
                        kind: afc_netsim::packet::PacketKind::Synthetic,
                        tag: 0,
                    },
                );
            }
        }
        fn on_delivered(
            &mut self,
            _p: &afc_netsim::packet::DeliveredPacket,
            _now: u64,
            _net: &mut Network,
        ) {
        }
    }
    struct Silent;
    impl afc_netsim::sim::TrafficModel for Silent {
        fn pre_cycle(&mut self, _n: u64, _net: &mut Network) {}
        fn on_delivered(
            &mut self,
            _p: &afc_netsim::packet::DeliveredPacket,
            _now: u64,
            _net: &mut Network,
        ) {
        }
    }

    for case in 0..8u64 {
        let mut p = SimRng::seed_from(0xAFC0 + case);
        let seed = p.gen_range(500);
        let spike_len = 100 + p.gen_range(500);
        let hot_fraction = 0.3 + p.gen_f64() * 0.6;

        let cfg = NetworkConfig::paper_3x3();
        let network = Network::new(cfg, &AfcFactory::paper(), seed).unwrap();
        let mut sim = Simulation::new(
            network,
            Churn {
                rng: SimRng::seed_from(seed),
                spike_len,
                hot_fraction,
            },
        );
        sim.run(4_000);
        // Stop and drain: every packet must come home.
        let mut sim = Simulation::new(sim.network, Silent);
        assert!(
            sim.drain(1_000_000),
            "AFC network must drain (case {case}: seed {seed} spike {spike_len})"
        );
        let stats = sim.network.stats();
        assert_eq!(stats.packets_delivered, stats.packets_offered);
        sim.network.credit_audit().expect("credit conservation");
    }
}

/// Fuzz of the configuration validator against real construction: for any
/// randomized [`NetworkConfig`] — including degenerate zero dimensions,
/// empty vnet lists, zero-depth buffers and zero timeouts — `validate()`
/// and `Network::new` must agree exactly. Accepted configurations build
/// under every mechanism drawn and survive a short traffic burst without
/// panicking; rejected ones surface the *same* structured [`ConfigError`]
/// from construction, never a panic.
#[test]
fn config_validator_agrees_with_construction_under_fuzz() {
    use afc_netsim::config::{RetransmitConfig, VnetClass, VnetConfig};

    /// Boundary-biased dimension draw: zeros and ones are the interesting
    /// edges of the mesh-size rules, so they get half the probability mass.
    fn dim(p: &mut SimRng) -> u16 {
        match p.gen_index(4) {
            0 => 0,
            1 => 1,
            _ => 2 + p.gen_range(6) as u16,
        }
    }

    let cases = if std::env::var("AFC_FULL_SCAN").is_ok() {
        512u64
    } else {
        96
    };
    for case in 0..cases {
        let mut p = SimRng::seed_from(0xC0F1_6000 + case);
        let vnets: Vec<VnetConfig> = (0..p.gen_index(4))
            .map(|i| VnetConfig {
                class: if i == 2 {
                    VnetClass::Data
                } else {
                    VnetClass::Control
                },
                vcs: p.gen_index(5),
                buffer_depth: p.gen_index(9),
            })
            .collect();
        let cfg = NetworkConfig {
            width: dim(&mut p),
            height: dim(&mut p),
            link_latency: p.gen_range(4),
            vnets,
            eject_bandwidth: p.gen_index(3),
            retransmit: p.gen_bool(0.3).then(|| RetransmitConfig {
                timeout: p.gen_range(600),
                ..RetransmitConfig::default()
            }),
            ..NetworkConfig::paper_3x3()
        };

        let verdict = cfg.validate();
        assert_eq!(cfg.validate(), verdict, "validate must be deterministic");

        let mech = p.gen_index(5);
        let seed = p.gen_range(1_000);
        match Network::new(cfg.clone(), mechanism(mech).as_ref(), seed) {
            Ok(network) => {
                assert_eq!(
                    verdict,
                    Ok(()),
                    "construction accepted a config the validator rejects \
                     (case {case}: {cfg:?})"
                );
                // A burst of light traffic: the constructed routers must
                // step cleanly. The paper packet mix targets vnets 0-2, so
                // narrower (still valid) configs step idle instead — the NI
                // documents out-of-range vnets as a caller contract, not a
                // config error.
                let rate = if cfg.vnet_count() >= 3 {
                    0.01 + p.gen_f64() * 0.05
                } else {
                    0.0
                };
                let traffic = OpenLoopTraffic::new(
                    RateSpec::Uniform(rate),
                    Pattern::UniformRandom,
                    PacketMix::paper(),
                    seed,
                );
                let mut sim = Simulation::new(network, traffic);
                sim.try_run(300).unwrap_or_else(|e| {
                    panic!("accepted config must step cleanly (case {case}: {e}; {cfg:?})")
                });
            }
            Err(e) => {
                assert_eq!(
                    verdict,
                    Err(e),
                    "construction and validator must reject identically \
                     (case {case}: {cfg:?})"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shard planner (DESIGN.md §12: load-proportional spatial sharding)
// ---------------------------------------------------------------------------

/// `shard_boundaries` is a pure partition function: for *any* weight
/// vector and shard request, the boundaries are strictly increasing from
/// 0 to n — which is exactly the "every node owned by exactly one shard"
/// property, since shard `k` owns `[b[k], b[k+1])`.
#[test]
fn shard_boundaries_partition_for_arbitrary_inputs() {
    for case in 0..40u64 {
        let mut p = SimRng::seed_from(0x5AAD + case);
        let n = 1 + p.gen_index(300);
        let shards = 1 + p.gen_index(24);
        // Mix of weight regimes: zero, uniform, heavy-tailed.
        let weights: Vec<u64> = (0..n)
            .map(|_| match p.gen_index(3) {
                0 => 0,
                1 => 1 + p.gen_range(8),
                _ => p.gen_range(10_000),
            })
            .collect();
        let b = afc_netsim::shard_boundaries(&weights, shards);
        let k = shards.min(n).max(1);
        assert_eq!(b.len(), k + 1, "case {case}: wrong boundary count");
        assert_eq!(b[0], 0, "case {case}: must start at 0");
        assert_eq!(*b.last().unwrap(), n, "case {case}: must end at n");
        assert!(
            b.windows(2).all(|w| w[0] < w[1]),
            "case {case}: boundaries not strictly increasing: {b:?} \
             (weights len {n}, shards {shards})"
        );
    }
}

/// The planner balances: with heavily skewed weights, no shard's weight
/// share may exceed what a greedy even cut allows (each cut lands at or
/// past its even share, so a shard holds at most one node more than the
/// ideal plus the largest single weight).
#[test]
fn shard_boundaries_track_skewed_load() {
    // All the load in the last quarter of the mesh: an even node split
    // would put ~all weight in the last shard; the load-proportional cut
    // must move boundaries right.
    let n = 256usize;
    let weights: Vec<u64> = (0..n).map(|i| if i >= 192 { 100 } else { 1 }).collect();
    let total: u64 = weights.iter().sum();
    let b = afc_netsim::shard_boundaries(&weights, 4);
    let shard_weight = |k: usize| -> u64 { weights[b[k]..b[k + 1]].iter().sum() };
    for k in 0..4 {
        assert!(
            shard_weight(k) <= total / 4 + 100 + 1,
            "shard {k} overloaded: {} of {total} (boundaries {b:?})",
            shard_weight(k)
        );
    }
    // The busy quarter must not all land in one shard.
    assert!(b[3] > 192, "planner ignored the load skew: {b:?}");
}

/// `Network::debug_shard_plan` on live networks: for arbitrary mesh
/// shapes, thread counts and activity states (driven by real traffic),
/// the node plan partitions routers/NIs and the channel plan partitions
/// channels, with shard channel ranges exactly following node ownership
/// (channels are grouped by upstream node).
#[test]
fn live_shard_plans_partition_routers_and_channels() {
    for case in 0..8u64 {
        let mut p = SimRng::seed_from(0x91A + case);
        let w = 2 + p.gen_range(9) as u16;
        let h = 2 + p.gen_range(9) as u16;
        let threads = [1usize, 2, 3, 4, 8, 16][p.gen_index(6)];
        let rate = p.gen_f64() * 0.2;
        let cfg = small_config(w, h);
        let network = Network::new(cfg, mechanism(p.gen_index(5)).as_ref(), case).unwrap();
        let traffic = OpenLoopTraffic::new(
            RateSpec::Uniform(rate),
            Pattern::UniformRandom,
            PacketMix::paper(),
            case,
        );
        let mut sim = Simulation::new(network, traffic);
        // Vary activity: plans must partition at cold start, mid-burst,
        // and after the burst drains back to idle.
        for phase in 0..3 {
            let n = (w as usize) * (h as usize);
            let chan_count = 2 * ((w as usize - 1) * h as usize + w as usize * (h as usize - 1));
            let (node_start, chan_start) = sim.network.debug_shard_plan(threads);
            let k = threads.min(n).max(1);
            assert_eq!(node_start.len(), k + 1);
            assert_eq!(chan_start.len(), k + 1);
            assert_eq!(node_start[0], 0);
            assert_eq!(*node_start.last().unwrap(), n);
            assert!(
                node_start.windows(2).all(|v| v[0] < v[1]),
                "case {case} phase {phase}: node ranges must be non-empty \
                 and disjoint: {node_start:?}"
            );
            assert_eq!(chan_start[0], 0);
            assert_eq!(
                *chan_start.last().unwrap(),
                chan_count,
                "case {case} phase {phase}: channel plan must cover every channel"
            );
            assert!(
                chan_start.windows(2).all(|v| v[0] <= v[1]),
                "case {case} phase {phase}: channel ranges overlap: {chan_start:?}"
            );
            sim.run(120);
        }
    }
}

/// Mid-run re-planning is output-neutral: aggressive re-plan intervals
/// (every 8 parallel cycles) under 4 threads produce byte-identical
/// snapshots to the serial engine and to a never-re-planning parallel run.
#[test]
fn replanning_mid_run_preserves_snapshot_bytes() {
    let cfg = NetworkConfig::paper_8x8();
    let run = |threads: usize, replan_every: u64| {
        let network = Network::new(cfg.clone(), &AfcFactory::paper(), 0xD1CE).unwrap();
        let traffic = OpenLoopTraffic::new(
            RateSpec::Uniform(0.30),
            Pattern::UniformRandom,
            PacketMix::paper(),
            0xD1CE,
        );
        let mut sim = Simulation::new(network, traffic);
        sim.network.set_sim_threads(threads);
        sim.network.set_parallel_adaptive(false);
        sim.network.set_replan_interval(replan_every);
        sim.run(400);
        if threads > 1 {
            assert!(
                sim.network.parallel_cycles() > 0,
                "replan test must actually exercise the parallel engine"
            );
        }
        sim.snapshot().expect("snapshot")
    };
    let serial = run(1, 8);
    let parallel_replanning = run(4, 8);
    let parallel_static = run(4, 0);
    assert_eq!(
        serial, parallel_replanning,
        "re-planning every 8 cycles changed the snapshot bytes"
    );
    assert_eq!(
        serial, parallel_static,
        "static parallel plan changed the snapshot bytes"
    );
}
