//! Allocation discipline of the sweep arena pool (DESIGN.md §14): the
//! second and later jobs a pooled worker executes must not pay network
//! construction — [`Network::reset_from_config`] reinitializes the arena
//! in place with (near-)zero heap traffic, and the job's remaining
//! allocations are traffic-model setup and output formatting only.
//!
//! Uses the same counting [`GlobalAlloc`] wrapper as `alloc_free.rs`; a
//! single `#[test]` keeps concurrent test threads out of the measurement
//! windows (the counter is global).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use afc_bench::sweep::{pool_clear, RunKind, RunSpec};
use afc_bench::MechanismId;
use afc_netsim::config::NetworkConfig;
use afc_netsim::network::Network;
use afc_netsim::sim::Simulation;
use afc_traffic::openloop::{OpenLoopTraffic, PacketMix, RateSpec};
use afc_traffic::synthetic::Pattern;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the wrapper only
// increments an atomic counter on the allocation paths.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn job(seed: u64) -> RunSpec {
    RunSpec {
        mechanism: MechanismId::Afc,
        seed,
        // Rate 0: no packets, so the measured window isolates *setup*
        // cost — construction vs in-place reset — from per-packet
        // allocations that both paths share.
        kind: RunKind::OpenLoop {
            rate: 0.0,
            pattern: Pattern::UniformRandom,
            mix: PacketMix::paper(),
            warmup_cycles: 50,
            measure_cycles: 100,
        },
    }
}

#[test]
fn pooled_worker_reuses_its_arena_without_allocating() {
    let cfg = NetworkConfig::paper_8x8();
    let mech = MechanismId::Afc.mechanism();
    let factory = mech.factory.as_ref();

    // Direct arena reset: construct, dirty with real traffic, then reset
    // in place. The reset itself must be allocation-free (clears and
    // refills of existing storage only; a handful tolerated for RNG/seed
    // plumbing noise).
    let before = allocations();
    let net = Network::new(cfg.clone(), factory, 1).expect("valid");
    let cold = allocations() - before;
    let traffic = OpenLoopTraffic::new(
        RateSpec::Uniform(0.05),
        Pattern::UniformRandom,
        PacketMix::paper(),
        1,
    );
    let mut sim = Simulation::new(net, traffic);
    sim.run(500);
    let before = allocations();
    assert!(sim.network.reset_from_config(&cfg, factory, 2));
    let reset = allocations() - before;
    assert!(
        reset <= 8,
        "in-place arena reset allocated {reset} times \
         (fresh construction: {cold})"
    );
    assert!(
        cold > 500,
        "fresh 8x8 construction counted only {cold} allocations — the \
         comparison baseline is broken"
    );

    // Sweep-level: after the first (cold) pooled job stocks this worker's
    // arena, every later arena-compatible job runs with near-zero setup
    // allocations — traffic-model construction and output strings, not
    // O(mesh) network construction.
    pool_clear();
    let before = allocations();
    let _ = job(10).execute_tuned(&cfg, false, false);
    let fresh = allocations() - before;
    let _ = job(11).execute_tuned(&cfg, true, false); // stocks the arena
    let before = allocations();
    let _ = job(12).execute_tuned(&cfg, true, false);
    let second = allocations() - before;
    let before = allocations();
    let _ = job(13).execute_tuned(&cfg, true, false);
    let third = allocations() - before;
    for (label, pooled) in [("second", second), ("third", third)] {
        assert!(
            pooled * 10 < fresh,
            "{label} pooled job allocated {pooled} times vs {fresh} for a \
             fresh job — the arena is not being reused"
        );
        assert!(
            pooled < 200,
            "{label} pooled job allocated {pooled} times — setup should be \
             traffic-model construction and output formatting only"
        );
    }
    pool_clear();
}
