//! Unit tests for the network engine itself, using minimal scripted
//! routers (independent of the real mechanisms in downstream crates).

use crate::config::NetworkConfig;
use crate::flit::{PacketKind, VirtualNetwork};
use crate::geom::{Coord, NodeId};
use crate::network::Network;
use crate::packet::PacketInput;
use crate::testutil::FifoFactory;

fn build(lossy: bool) -> Network {
    Network::new(NetworkConfig::paper_3x3(), &FifoFactory { lossy }, 1).expect("valid")
}

fn offer(net: &mut Network, src: (u16, u16), dest: (u16, u16), len: u16) {
    let mesh = net.mesh().clone();
    let s = mesh.node_at(Coord::new(src.0, src.1)).unwrap();
    let d = mesh.node_at(Coord::new(dest.0, dest.1)).unwrap();
    net.offer_packet(
        s,
        PacketInput {
            dest: d,
            vnet: VirtualNetwork(0),
            len,
            kind: PacketKind::Synthetic,
            tag: 0,
        },
    );
}

#[test]
fn engine_delivers_multi_flit_packet_end_to_end() {
    let mut net = build(false);
    offer(&mut net, (0, 0), (2, 2), 4);
    let mut delivered = Vec::new();
    for _ in 0..100 {
        net.step();
        delivered.extend(net.take_delivered());
    }
    assert_eq!(delivered.len(), 1);
    assert_eq!(delivered[0].descriptor.len, 4);
    // 4 hops each for 4 flits.
    assert_eq!(delivered[0].total_hops, 16);
    net.audit().expect("conservation");
    assert!(net.is_drained());
}

#[test]
fn audit_detects_lost_flits() {
    let mut net = build(true); // lossy routers discard everything
    net.disable_conservation_check(); // the loss is the point of this test
    offer(&mut net, (0, 0), (2, 2), 1);
    for _ in 0..30 {
        net.step();
    }
    let err = net.audit().expect_err("lossy router must fail the audit");
    assert!(err.contains("conservation"), "got: {err}");
}

#[test]
fn reset_metrics_rebases_the_audit() {
    let mut net = build(false);
    offer(&mut net, (0, 0), (2, 2), 8);
    // Reset mid-flight: the in-flight flits become the audit baseline.
    for _ in 0..5 {
        net.step();
    }
    net.reset_metrics();
    assert_eq!(net.stats().flits_injected, 0);
    net.audit().expect("baseline absorbs in-flight flits");
    for _ in 0..200 {
        net.step();
        net.take_delivered();
    }
    net.audit().expect("still balanced after delivery");
}

#[test]
fn offer_log_captures_packets_in_order() {
    let mut net = build(false);
    net.enable_offer_recording();
    offer(&mut net, (0, 0), (1, 1), 1);
    net.step();
    offer(&mut net, (2, 2), (0, 0), 2);
    let log = net.take_offer_log();
    assert_eq!(log.len(), 2);
    assert!(log[0].0 <= log[1].0);
    assert_eq!(log[1].2.len, 2);
    // Taking drains but keeps recording.
    offer(&mut net, (1, 0), (0, 0), 1);
    assert_eq!(net.take_offer_log().len(), 1);
}

#[test]
fn total_counters_aggregate_all_routers() {
    let mut net = build(false);
    for _ in 0..10 {
        net.step();
    }
    let totals = net.total_counters();
    assert_eq!(totals.cycles, 10 * 9);
    let one = net.router_counters(NodeId::new(0));
    assert_eq!(one.cycles, 10);
}

#[test]
fn mechanism_metadata_is_exposed() {
    let net = build(false);
    assert_eq!(net.mechanism(), "fifo-test");
    assert_eq!(net.flit_width_bits(), 41);
    assert_eq!(net.buffer_flits_per_port(), 16);
    assert_eq!(net.modes().len(), 9);
}

#[test]
fn watchdog_catches_ancient_flits() {
    // A flit bouncing forever would trip the age watchdog. Simulate by
    // injecting a flit whose `injected_at` lies in the deep past relative
    // to a tiny watchdog bound.
    let config = NetworkConfig {
        max_flit_age: 10,
        ..NetworkConfig::paper_3x3()
    };
    let mut net = Network::new(config, &FifoFactory { lossy: false }, 1).expect("valid");
    offer(&mut net, (0, 0), (2, 2), 1);
    // Advance past the watchdog bound while the flit crosses several links.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for _ in 0..100 {
            net.step();
            net.take_delivered();
        }
    }));
    // With a 10-cycle bound and a 4-hop path (16 cycles), the watchdog
    // must fire.
    assert!(result.is_err(), "watchdog should have panicked");
}
