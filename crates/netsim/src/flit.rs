//! Flits: the atomic unit of network transfer.
//!
//! Because the AFC router (and the backpressureless baseline) route
//! flit-by-flit, *every* flit carries full routing metadata — destination,
//! packet id, sequence number — exactly as the paper's wider-flit encoding
//! requires (Section III-A). The per-mechanism control-bit widths (9/13/17
//! bits on top of the 32-bit payload) are accounted for by the energy model,
//! not by this struct.

use crate::geom::NodeId;
use std::fmt;

/// A simulation time point, in cycles.
pub type Cycle = u64;

/// Globally unique packet identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Index of a virtual network (message class).
///
/// Virtual networks separate request/response traffic classes for
/// protocol-level deadlock avoidance; the paper's configuration uses two
/// control vnets and one data vnet (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualNetwork(pub u8);

impl VirtualNetwork {
    /// Dense index of the virtual network.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VirtualNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vn{}", self.0)
    }
}

/// Index of a virtual channel within a port (and, where relevant, within a
/// virtual network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VcId(pub u8);

impl VcId {
    /// Dense index of the virtual channel.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vc{}", self.0)
    }
}

/// Semantic class of a packet, used by closed-loop traffic models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Coherence/memory request (expected reply).
    Request,
    /// Reply carrying data or acknowledgement.
    Response,
    /// Dirty writeback — the paper's "unexpected packet" case.
    Writeback,
    /// Synthetic open-loop traffic.
    Synthetic,
}

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitPosition {
    /// First flit of a multi-flit packet.
    Head,
    /// Interior flit.
    Body,
    /// Last flit of a multi-flit packet.
    Tail,
    /// The only flit of a single-flit packet (head and tail at once).
    Single,
}

/// The atomic unit of transfer: one flit.
///
/// Flits are small, `Copy`, and self-contained: any flit can be routed on its
/// own (flit-by-flit routing), reassembled at the destination via
/// (`packet`, `seq`, `len`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Flit {
    /// Packet this flit belongs to.
    pub packet: PacketId,
    /// Sequence number within the packet (`0..len`).
    pub seq: u16,
    /// Total number of flits in the packet.
    pub len: u16,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Virtual network (message class).
    pub vnet: VirtualNetwork,
    /// Virtual channel currently assigned to the flit, if any.
    ///
    /// Backpressured routers assign this during VC allocation; AFC routers in
    /// backpressureless mode *propagate* it unchanged (Section III-A), and
    /// AFC's lazy VC allocation overwrites it at the downstream buffer write.
    pub vc: Option<VcId>,
    /// Cycle at which the packet entered the source injection queue.
    pub created_at: Cycle,
    /// Cycle at which this flit first entered the network (left the NI).
    pub injected_at: Cycle,
    /// Number of router-to-router hops taken so far.
    pub hops: u16,
    /// Number of deflections (non-productive hops) suffered so far.
    pub deflections: u16,
    /// Semantic class inherited from the packet descriptor.
    pub kind: PacketKind,
    /// Opaque tag propagated from the packet descriptor (traffic-model use).
    pub tag: u64,
    /// End-to-end payload checksum, stamped at injection and verified at
    /// reassembly. Link-level corruption faults flip bits here; a mismatch
    /// against [`Flit::expected_checksum`] marks the flit as corrupt.
    pub checksum: u16,
}

impl Flit {
    /// The checksum a pristine copy of this flit would carry, derived from
    /// its immutable identity fields (packet, sequence, endpoints, tag).
    pub fn expected_checksum(&self) -> u16 {
        checksum(self.packet, self.seq, self.src, self.dest, self.tag)
    }

    /// Whether the payload checksum no longer matches — i.e. the flit was
    /// corrupted in flight.
    pub fn is_corrupt(&self) -> bool {
        self.checksum != self.expected_checksum()
    }

    /// Flips checksum bits, simulating payload corruption on a link. The
    /// resulting flit always fails [`Flit::is_corrupt`].
    pub fn corrupt(&mut self) {
        self.checksum ^= 0xBEEF;
    }

    /// Restores the pristine checksum (a source retransmitting a flit sends
    /// fresh, uncorrupted data).
    pub fn repair(&mut self) {
        self.checksum = self.expected_checksum();
    }
    /// Position of this flit within its packet.
    ///
    /// ```
    /// use afc_netsim::flit::{Flit, FlitPosition};
    /// # use afc_netsim::flit::{PacketId, VirtualNetwork};
    /// # use afc_netsim::geom::NodeId;
    /// # let mut f = Flit::test_flit(PacketId(1), NodeId::new(0), NodeId::new(1));
    /// f.seq = 0; f.len = 1;
    /// assert_eq!(f.position(), FlitPosition::Single);
    /// f.len = 4;
    /// assert_eq!(f.position(), FlitPosition::Head);
    /// ```
    pub fn position(&self) -> FlitPosition {
        match (self.seq, self.len) {
            (0, 1) => FlitPosition::Single,
            (0, _) => FlitPosition::Head,
            (s, l) if s + 1 == l => FlitPosition::Tail,
            _ => FlitPosition::Body,
        }
    }

    /// Whether this is the head (or single) flit of its packet.
    pub fn is_head(&self) -> bool {
        self.seq == 0
    }

    /// Whether this is the tail (or single) flit of its packet.
    pub fn is_tail(&self) -> bool {
        self.seq + 1 == self.len
    }

    /// A minimal single-flit for tests: control vnet 0, zero timestamps.
    ///
    /// Exposed (rather than `#[cfg(test)]`) so downstream crates can build
    /// flits in their own unit tests without replicating boilerplate.
    pub fn test_flit(packet: PacketId, src: NodeId, dest: NodeId) -> Flit {
        Flit {
            packet,
            seq: 0,
            len: 1,
            src,
            dest,
            vnet: VirtualNetwork(0),
            vc: None,
            created_at: 0,
            injected_at: 0,
            hops: 0,
            deflections: 0,
            kind: PacketKind::Synthetic,
            tag: 0,
            checksum: checksum(packet, 0, src, dest, 0),
        }
    }
}

/// Computes the end-to-end checksum over a flit's identity fields.
///
/// A folded FNV-1a over the fields a retransmitting source would re-send
/// verbatim; 16 bits is plenty for a simulator (we only ever need "matches /
/// does not match", never collision resistance).
pub fn checksum(packet: PacketId, seq: u16, src: NodeId, dest: NodeId, tag: u64) -> u16 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for word in [
        packet.0,
        seq as u64,
        src.index() as u64,
        dest.index() as u64,
        tag,
    ] {
        h ^= word;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h ^ (h >> 16) ^ (h >> 32) ^ (h >> 48)) as u16
}

impl fmt::Display for Flit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}/{}] {}->{} {}",
            self.packet, self.seq, self.len, self.src, self.dest, self.vnet
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit(seq: u16, len: u16) -> Flit {
        let mut f = Flit::test_flit(PacketId(7), NodeId::new(0), NodeId::new(8));
        f.seq = seq;
        f.len = len;
        f
    }

    #[test]
    fn positions() {
        assert_eq!(flit(0, 1).position(), FlitPosition::Single);
        assert_eq!(flit(0, 5).position(), FlitPosition::Head);
        assert_eq!(flit(2, 5).position(), FlitPosition::Body);
        assert_eq!(flit(4, 5).position(), FlitPosition::Tail);
    }

    #[test]
    fn head_tail_predicates() {
        assert!(flit(0, 1).is_head() && flit(0, 1).is_tail());
        assert!(flit(0, 3).is_head() && !flit(0, 3).is_tail());
        assert!(!flit(2, 3).is_head() && flit(2, 3).is_tail());
    }

    #[test]
    fn display_is_informative() {
        let s = format!("{}", flit(1, 4));
        assert!(s.contains("p7"));
        assert!(s.contains("1/4"));
    }
}
