//! Open-loop traffic: Bernoulli packet injection at a configured rate.
//!
//! Open-loop drivers inject packets regardless of network state (the source
//! queues grow without bound past saturation), which is exactly what the
//! latency-throughput sweeps of the paper's "Other results" and the
//! Section V-B spatial-variation experiment need.

use afc_netsim::flit::{Cycle, VirtualNetwork};
use afc_netsim::network::Network;
use afc_netsim::packet::{DeliveredPacket, PacketInput, PacketKind};
use afc_netsim::rng::SimRng;
use afc_netsim::sim::TrafficModel;
use afc_netsim::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

use crate::synthetic::Pattern;

/// Mix of packet classes injected by an open-loop source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketMix {
    /// Probability that a packet is a multi-flit data packet.
    pub data_fraction: f64,
    /// Length of a data packet in flits.
    pub data_len: u16,
    /// Virtual network for data packets.
    pub data_vnet: u8,
    /// Length of a control packet in flits.
    pub control_len: u16,
    /// Virtual network for control packets.
    pub control_vnet: u8,
}

impl PacketMix {
    /// The paper's mix: 1-flit control packets on vnet 0, 16-flit data
    /// packets (64-byte block over 32-bit flits) on vnet 2, half the
    /// packets being data.
    pub fn paper() -> PacketMix {
        PacketMix {
            data_fraction: 0.5,
            data_len: 16,
            data_vnet: 2,
            control_len: 1,
            control_vnet: 0,
        }
    }

    /// Single-flit packets only (classic open-loop network evaluation).
    pub fn single_flit() -> PacketMix {
        PacketMix {
            data_fraction: 0.0,
            data_len: 1,
            data_vnet: 2,
            control_len: 1,
            control_vnet: 0,
        }
    }

    /// Expected packet length in flits.
    pub fn mean_len(&self) -> f64 {
        self.data_fraction * self.data_len as f64
            + (1.0 - self.data_fraction) * self.control_len as f64
    }
}

impl Default for PacketMix {
    fn default() -> Self {
        PacketMix::paper()
    }
}

/// Per-node injection rates in flits/node/cycle.
#[derive(Debug, Clone, PartialEq)]
pub enum RateSpec {
    /// Same rate at every node.
    Uniform(f64),
    /// Explicit per-node rates (length must equal the node count).
    PerNode(Vec<f64>),
}

impl RateSpec {
    /// Rate for one node.
    ///
    /// # Panics
    ///
    /// Panics if a `PerNode` vector is shorter than the node index.
    pub fn rate(&self, node: usize) -> f64 {
        match self {
            RateSpec::Uniform(r) => *r,
            RateSpec::PerNode(v) => v[node],
        }
    }
}

/// Open-loop traffic model.
#[derive(Debug, Clone)]
pub struct OpenLoopTraffic {
    rates: RateSpec,
    pattern: Pattern,
    mix: PacketMix,
    rng: SimRng,
    /// Stop offering new packets (used to drain at the end of a run).
    stopped: bool,
    delivered: u64,
}

impl OpenLoopTraffic {
    /// Creates an open-loop source.
    pub fn new(rates: RateSpec, pattern: Pattern, mix: PacketMix, seed: u64) -> OpenLoopTraffic {
        OpenLoopTraffic {
            rates,
            pattern,
            mix,
            rng: SimRng::seed_from(seed ^ 0x4F50_454E_4C4F_4F50), // "OPENLOOP"
            stopped: false,
            delivered: 0,
        }
    }

    /// Stops offering new packets (the network can then be drained).
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Packets fully delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

impl TrafficModel for OpenLoopTraffic {
    fn pre_cycle(&mut self, _now: Cycle, net: &mut Network) {
        if self.stopped {
            return;
        }
        let mesh = net.mesh().clone();
        let mean_len = self.mix.mean_len();
        for node in mesh.nodes() {
            let rate = self.rates.rate(node.index());
            if rate <= 0.0 {
                continue;
            }
            let p_packet = (rate / mean_len).min(1.0);
            if !self.rng.gen_bool(p_packet) {
                continue;
            }
            let Some(dest) = self.pattern.dest(node, &mesh, &mut self.rng) else {
                continue;
            };
            let data = self.rng.gen_bool(self.mix.data_fraction);
            let (len, vnet) = if data {
                (self.mix.data_len, self.mix.data_vnet)
            } else {
                (self.mix.control_len, self.mix.control_vnet)
            };
            net.offer_packet(
                node,
                PacketInput {
                    dest,
                    vnet: VirtualNetwork(vnet),
                    len,
                    kind: PacketKind::Synthetic,
                    tag: 0,
                },
            );
        }
    }

    fn on_delivered(&mut self, _packet: &DeliveredPacket, _now: Cycle, _net: &mut Network) {
        self.delivered += 1;
    }

    fn save_state(&self, w: &mut SnapshotWriter) -> Result<(), SnapshotError> {
        // Rates, pattern, and mix are construction-time configuration; only
        // the mutable injection state travels.
        for word in self.rng.state() {
            w.put_u64(word);
        }
        w.put_bool(self.stopped);
        w.put_u64(self.delivered);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.get_u64("open-loop rng state")?;
        }
        self.rng = SimRng::from_state(state);
        self.stopped = r.get_bool("open-loop stopped flag")?;
        self.delivered = r.get_u64("open-loop delivered count")?;
        Ok(())
    }
}
