//! Argument parsing and dispatch for the `afc-noc` command-line tool.
//!
//! Kept dependency-free: flags are `--key value` pairs parsed by hand, with
//! every decision testable through [`Cli::parse`].

use crate::prelude::*;
use afc_netsim::router::RouterFactory;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Cli {
    /// `afc-noc run` — one closed-loop measurement.
    Run(RunArgs),
    /// `afc-noc inspect` — run AFC briefly and print per-router adaptive
    /// state.
    Inspect(InspectArgs),
    /// `afc-noc sweep` — open-loop latency-throughput sweep.
    Sweep(SweepArgs),
    /// `afc-noc list` — print available mechanisms, workloads, patterns.
    List,
    /// `afc-noc help` (or parse failure, carrying the message).
    Help(Option<String>),
}

/// Arguments of the `run` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Mechanism name.
    pub mechanism: String,
    /// Workload name.
    pub workload: String,
    /// Mesh dimensions.
    pub mesh: (u16, u16),
    /// RNG seed.
    pub seed: u64,
    /// Warmup transactions.
    pub warmup: u64,
    /// Measured transactions.
    pub txns: u64,
}

/// Arguments of the `inspect` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct InspectArgs {
    /// Workload name.
    pub workload: String,
    /// Mesh dimensions.
    pub mesh: (u16, u16),
    /// Cycles to run before inspecting.
    pub cycles: u64,
    /// RNG seed.
    pub seed: u64,
}

/// Arguments of the `sweep` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Mechanism name.
    pub mechanism: String,
    /// Traffic pattern name.
    pub pattern: String,
    /// Offered rates (flits/node/cycle).
    pub rates: Vec<f64>,
    /// Mesh dimensions.
    pub mesh: (u16, u16),
    /// Measured cycles per point.
    pub cycles: u64,
    /// RNG seed.
    pub seed: u64,
}

/// Names of the available mechanisms.
pub const MECHANISMS: &[&str] = &[
    "backpressured",
    "bp-read-bypass",
    "bp-ideal-bypass",
    "bless",
    "bless-oldest",
    "drop",
    "afc",
    "afc-always-bp",
];

/// Names of the available workloads.
pub const WORKLOADS: &[&str] = &["barnes", "ocean", "water", "apache", "oltp", "specjbb"];

/// Names of the available open-loop patterns.
pub const PATTERNS: &[&str] = &[
    "uniform",
    "transpose",
    "bit-complement",
    "near-neighbor",
    "tornado",
    "shuffle",
    "rotation",
    "quadrant",
];

/// Builds the router factory for a mechanism name.
///
/// # Errors
///
/// Returns the unknown name.
pub fn mechanism_factory(name: &str) -> Result<Box<dyn RouterFactory>, String> {
    Ok(match name {
        "backpressured" => Box::new(BackpressuredFactory::new()),
        "bp-read-bypass" => Box::new(BackpressuredFactory::read_bypass()),
        "bp-ideal-bypass" => Box::new(BackpressuredFactory::ideal_bypass()),
        "bless" => Box::new(DeflectionFactory::new()),
        "bless-oldest" => Box::new(DeflectionFactory::oldest_first()),
        "drop" => Box::new(DropFactory::new()),
        "afc" => Box::new(AfcFactory::paper()),
        "afc-always-bp" => Box::new(AfcFactory::always_backpressured()),
        other => return Err(format!("unknown mechanism {other:?} (see `afc-noc list`)")),
    })
}

/// Looks up a workload preset by name.
///
/// # Errors
///
/// Returns the unknown name.
pub fn workload_by_name(name: &str) -> Result<WorkloadParams, String> {
    workloads::all()
        .into_iter()
        .find(|w| w.name == name)
        .ok_or_else(|| format!("unknown workload {name:?} (see `afc-noc list`)"))
}

/// Looks up a pattern by name.
///
/// # Errors
///
/// Returns the unknown name.
pub fn pattern_by_name(name: &str) -> Result<Pattern, String> {
    Ok(match name {
        "uniform" => Pattern::UniformRandom,
        "transpose" => Pattern::Transpose,
        "bit-complement" => Pattern::BitComplement,
        "near-neighbor" => Pattern::NearNeighbor,
        "tornado" => Pattern::Tornado,
        "shuffle" => Pattern::Shuffle,
        "rotation" => Pattern::Rotation,
        "quadrant" => Pattern::Quadrant,
        other => return Err(format!("unknown pattern {other:?} (see `afc-noc list`)")),
    })
}

fn parse_mesh(s: &str) -> Result<(u16, u16), String> {
    let (w, h) = s
        .split_once(['x', 'X'])
        .ok_or_else(|| format!("mesh must look like 3x3, got {s:?}"))?;
    let w = w.parse().map_err(|_| format!("bad mesh width {w:?}"))?;
    let h = h.parse().map_err(|_| format!("bad mesh height {h:?}"))?;
    Ok((w, h))
}

fn take_flags(args: &[String]) -> Result<std::collections::HashMap<String, String>, String> {
    let mut map = std::collections::HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = &args[i];
        if !key.starts_with("--") {
            return Err(format!("expected a --flag, got {key:?}"));
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag {key} needs a value"))?;
        map.insert(key[2..].to_string(), value.clone());
        i += 2;
    }
    Ok(map)
}

impl Cli {
    /// Parses `argv[1..]`.
    pub fn parse(args: &[String]) -> Cli {
        match Cli::try_parse(args) {
            Ok(cli) => cli,
            Err(msg) => Cli::Help(Some(msg)),
        }
    }

    fn try_parse(args: &[String]) -> Result<Cli, String> {
        let Some(cmd) = args.first() else {
            return Ok(Cli::Help(None));
        };
        match cmd.as_str() {
            "list" => Ok(Cli::List),
            "help" | "--help" | "-h" => Ok(Cli::Help(None)),
            "run" => {
                let flags = take_flags(&args[1..])?;
                let get = |k: &str, default: &str| {
                    flags.get(k).cloned().unwrap_or_else(|| default.to_string())
                };
                Ok(Cli::Run(RunArgs {
                    mechanism: get("mechanism", "afc"),
                    workload: get("workload", "apache"),
                    mesh: parse_mesh(&get("mesh", "3x3"))?,
                    seed: get("seed", "1").parse().map_err(|_| "bad --seed")?,
                    warmup: get("warmup", "500").parse().map_err(|_| "bad --warmup")?,
                    txns: get("txns", "2000").parse().map_err(|_| "bad --txns")?,
                }))
            }
            "inspect" => {
                let flags = take_flags(&args[1..])?;
                let get = |k: &str, default: &str| {
                    flags.get(k).cloned().unwrap_or_else(|| default.to_string())
                };
                Ok(Cli::Inspect(InspectArgs {
                    workload: get("workload", "ocean"),
                    mesh: parse_mesh(&get("mesh", "3x3"))?,
                    cycles: get("cycles", "20000").parse().map_err(|_| "bad --cycles")?,
                    seed: get("seed", "1").parse().map_err(|_| "bad --seed")?,
                }))
            }
            "sweep" => {
                let flags = take_flags(&args[1..])?;
                let get = |k: &str, default: &str| {
                    flags.get(k).cloned().unwrap_or_else(|| default.to_string())
                };
                let rates = get("rates", "0.1,0.3,0.5,0.7")
                    .split(',')
                    .map(|r| r.trim().parse::<f64>().map_err(|_| format!("bad rate {r:?}")))
                    .collect::<Result<Vec<f64>, String>>()?;
                Ok(Cli::Sweep(SweepArgs {
                    mechanism: get("mechanism", "afc"),
                    pattern: get("pattern", "uniform"),
                    rates,
                    mesh: parse_mesh(&get("mesh", "3x3"))?,
                    cycles: get("cycles", "10000").parse().map_err(|_| "bad --cycles")?,
                    seed: get("seed", "1").parse().map_err(|_| "bad --seed")?,
                }))
            }
            other => Err(format!("unknown command {other:?}")),
        }
    }
}

/// The help text.
pub const USAGE: &str = "\
afc-noc — Adaptive Flow Control NoC simulator

USAGE:
  afc-noc run   [--mechanism M] [--workload W] [--mesh 3x3] [--seed N]
                [--warmup N] [--txns N]
  afc-noc sweep [--mechanism M] [--pattern P] [--rates 0.1,0.3,...]
                [--mesh 3x3] [--cycles N] [--seed N]
  afc-noc inspect [--workload W] [--mesh 3x3] [--cycles N] [--seed N]
  afc-noc list
  afc-noc help
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_run_with_defaults() {
        let cli = Cli::parse(&argv("run"));
        let Cli::Run(a) = cli else { panic!("expected run") };
        assert_eq!(a.mechanism, "afc");
        assert_eq!(a.mesh, (3, 3));
        assert_eq!(a.txns, 2000);
    }

    #[test]
    fn parses_run_with_flags() {
        let cli = Cli::parse(&argv(
            "run --mechanism bless --workload water --mesh 5x4 --seed 9 --txns 100",
        ));
        let Cli::Run(a) = cli else { panic!("expected run") };
        assert_eq!(a.mechanism, "bless");
        assert_eq!(a.workload, "water");
        assert_eq!(a.mesh, (5, 4));
        assert_eq!(a.seed, 9);
        assert_eq!(a.txns, 100);
    }

    #[test]
    fn parses_inspect() {
        let cli = Cli::parse(&argv("inspect --workload apache --cycles 500"));
        let Cli::Inspect(a) = cli else { panic!("expected inspect") };
        assert_eq!(a.workload, "apache");
        assert_eq!(a.cycles, 500);
        assert_eq!(a.mesh, (3, 3));
    }

    #[test]
    fn parses_sweep_rates() {
        let cli = Cli::parse(&argv("sweep --rates 0.1,0.2 --pattern tornado"));
        let Cli::Sweep(a) = cli else { panic!("expected sweep") };
        assert_eq!(a.rates, vec![0.1, 0.2]);
        assert_eq!(a.pattern, "tornado");
    }

    #[test]
    fn rejects_garbage_gracefully() {
        assert!(matches!(Cli::parse(&argv("frobnicate")), Cli::Help(Some(_))));
        assert!(matches!(
            Cli::parse(&argv("run --mesh banana")),
            Cli::Help(Some(_))
        ));
        assert!(matches!(
            Cli::parse(&argv("run --seed")),
            Cli::Help(Some(_))
        ));
        assert!(matches!(Cli::parse(&[]), Cli::Help(None)));
    }

    #[test]
    fn lookups_cover_all_names() {
        for m in MECHANISMS {
            assert!(mechanism_factory(m).is_ok(), "{m}");
        }
        for w in WORKLOADS {
            assert!(workload_by_name(w).is_ok(), "{w}");
        }
        for p in PATTERNS {
            assert!(pattern_by_name(p).is_ok(), "{p}");
        }
        assert!(mechanism_factory("nope").is_err());
        assert!(workload_by_name("nope").is_err());
        assert!(pattern_by_name("nope").is_err());
    }
}
