//! Synthetic destination patterns for open-loop traffic.

use afc_netsim::geom::{Coord, NodeId};
use afc_netsim::rng::SimRng;
use afc_netsim::topology::Mesh;

/// A synthetic traffic pattern: maps a source to a destination.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// Uniform over all nodes other than the source.
    UniformRandom,
    /// `(x, y) -> (y, x)`; nodes on the diagonal generate no traffic.
    Transpose,
    /// Mirror through the mesh center: `(x, y) -> (W-1-x, H-1-y)`.
    BitComplement,
    /// A uniformly chosen mesh neighbor (the paper's "easy" pattern).
    NearNeighbor,
    /// With probability `fraction`, a uniformly chosen hotspot; otherwise
    /// uniform random.
    HotSpot {
        /// The hotspot nodes.
        hotspots: Vec<NodeId>,
        /// Fraction of traffic aimed at hotspots.
        fraction: f64,
    },
    /// Uniform within the source's mesh quadrant (the consolidation
    /// workload of Section V-B: traffic injected in a quadrant stays in the
    /// quadrant).
    Quadrant,
    /// Tornado: halfway around the ring in X (`(x, y) -> (x + W/2 mod W,
    /// y)`) — an adversarial pattern for dimension-ordered routing.
    Tornado,
    /// Perfect shuffle on the node index (`i -> rotate_left_1(i)` within
    /// `ceil(log2(N))` bits, invalid results wrap by modulo).
    Shuffle,
    /// Fixed rotation by one node (`i -> i + 1 mod N`) — pure neighbor
    /// pipeline in index space.
    Rotation,
}

impl Pattern {
    /// Picks a destination for traffic from `src`, or `None` if the pattern
    /// generates no traffic from this node (e.g. transpose diagonal).
    pub fn dest(&self, src: NodeId, mesh: &Mesh, rng: &mut SimRng) -> Option<NodeId> {
        match self {
            Pattern::UniformRandom => uniform_other(src, mesh.node_count(), rng),
            Pattern::Transpose => {
                let c = mesh.coord(src);
                let t = Coord::new(c.y, c.x);
                let dest = mesh.node_at(t)?;
                (dest != src).then_some(dest)
            }
            Pattern::BitComplement => {
                let c = mesh.coord(src);
                let m = Coord::new(mesh.width() - 1 - c.x, mesh.height() - 1 - c.y);
                let dest = mesh.node_at(m).expect("mirror stays in mesh");
                (dest != src).then_some(dest)
            }
            Pattern::NearNeighbor => {
                let dirs: Vec<_> = mesh.neighbor_dirs(src).collect();
                if dirs.is_empty() {
                    return None;
                }
                let d = dirs[rng.gen_index(dirs.len())];
                mesh.neighbor(src, d)
            }
            Pattern::HotSpot { hotspots, fraction } => {
                if !hotspots.is_empty() && rng.gen_bool(*fraction) {
                    let h = hotspots[rng.gen_index(hotspots.len())];
                    if h != src {
                        return Some(h);
                    }
                }
                uniform_other(src, mesh.node_count(), rng)
            }
            Pattern::Quadrant => {
                let members = quadrant_members(src, mesh);
                let others: Vec<NodeId> = members.into_iter().filter(|n| *n != src).collect();
                if others.is_empty() {
                    None
                } else {
                    Some(others[rng.gen_index(others.len())])
                }
            }
            Pattern::Tornado => {
                let c = mesh.coord(src);
                let shift = mesh.width() / 2;
                if shift == 0 {
                    return None;
                }
                let t = Coord::new((c.x + shift) % mesh.width(), c.y);
                let dest = mesh.node_at(t).expect("wrapped x stays in mesh");
                (dest != src).then_some(dest)
            }
            Pattern::Shuffle => {
                let n = mesh.node_count();
                let bits = usize::BITS - (n - 1).leading_zeros();
                let i = src.index();
                let rotated =
                    ((i << 1) | (i >> (bits.max(1) - 1) as usize)) & ((1usize << bits) - 1);
                let dest = NodeId::new(rotated % n);
                (dest != src).then_some(dest)
            }
            Pattern::Rotation => {
                let n = mesh.node_count();
                let dest = NodeId::new((src.index() + 1) % n);
                (dest != src).then_some(dest)
            }
        }
    }
}

fn uniform_other(src: NodeId, nodes: usize, rng: &mut SimRng) -> Option<NodeId> {
    if nodes <= 1 {
        return None;
    }
    let mut d = rng.gen_index(nodes - 1);
    if d >= src.index() {
        d += 1;
    }
    Some(NodeId::new(d))
}

/// Index (0-3) of the quadrant a node belongs to: west/east split at
/// `width/2`, north/south at `height/2`.
pub fn quadrant_of(node: NodeId, mesh: &Mesh) -> usize {
    let c = mesh.coord(node);
    let east = c.x >= mesh.width() / 2 + mesh.width() % 2;
    let south = c.y >= mesh.height() / 2 + mesh.height() % 2;
    (east as usize) | ((south as usize) << 1)
}

/// All nodes in the same quadrant as `node`.
pub fn quadrant_members(node: NodeId, mesh: &Mesh) -> Vec<NodeId> {
    let q = quadrant_of(node, mesh);
    mesh.nodes()
        .filter(|n| quadrant_of(*n, mesh) == q)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(w: u16, h: u16) -> Mesh {
        Mesh::new(w, h).unwrap()
    }

    #[test]
    fn uniform_never_targets_self_and_covers_all() {
        let m = mesh(3, 3);
        let mut rng = SimRng::seed_from(1);
        let src = NodeId::new(4);
        let mut seen = [false; 9];
        for _ in 0..500 {
            let d = Pattern::UniformRandom.dest(src, &m, &mut rng).unwrap();
            assert_ne!(d, src);
            seen[d.index()] = true;
        }
        assert_eq!(seen.iter().filter(|s| **s).count(), 8);
    }

    #[test]
    fn transpose_mapping() {
        let m = mesh(3, 3);
        let mut rng = SimRng::seed_from(2);
        let src = m.node_at(Coord::new(2, 0)).unwrap();
        let d = Pattern::Transpose.dest(src, &m, &mut rng).unwrap();
        assert_eq!(m.coord(d), Coord::new(0, 2));
        // Diagonal generates nothing.
        let diag = m.node_at(Coord::new(1, 1)).unwrap();
        assert_eq!(Pattern::Transpose.dest(diag, &m, &mut rng), None);
    }

    #[test]
    fn bit_complement_mirrors() {
        let m = mesh(4, 4);
        let mut rng = SimRng::seed_from(3);
        let src = m.node_at(Coord::new(0, 1)).unwrap();
        let d = Pattern::BitComplement.dest(src, &m, &mut rng).unwrap();
        assert_eq!(m.coord(d), Coord::new(3, 2));
    }

    #[test]
    fn near_neighbor_is_adjacent() {
        let m = mesh(3, 3);
        let mut rng = SimRng::seed_from(4);
        for src in m.nodes() {
            for _ in 0..20 {
                let d = Pattern::NearNeighbor.dest(src, &m, &mut rng).unwrap();
                assert_eq!(m.distance(src, d), 1);
            }
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let m = mesh(3, 3);
        let mut rng = SimRng::seed_from(5);
        let hot = NodeId::new(4);
        let p = Pattern::HotSpot {
            hotspots: vec![hot],
            fraction: 0.8,
        };
        let src = NodeId::new(0);
        let hits = (0..1000)
            .filter(|_| p.dest(src, &m, &mut rng) == Some(hot))
            .count();
        // ~80% plus the uniform share.
        assert!(hits > 700, "hotspot hits {hits}");
    }

    #[test]
    fn quadrants_partition_even_mesh() {
        let m = mesh(8, 8);
        let mut counts = [0usize; 4];
        for n in m.nodes() {
            counts[quadrant_of(n, &m)] += 1;
        }
        assert_eq!(counts, [16, 16, 16, 16]);
    }

    #[test]
    fn quadrant_traffic_stays_inside() {
        let m = mesh(8, 8);
        let mut rng = SimRng::seed_from(6);
        for src in m.nodes() {
            for _ in 0..10 {
                let d = Pattern::Quadrant.dest(src, &m, &mut rng).unwrap();
                assert_eq!(quadrant_of(d, &m), quadrant_of(src, &m));
                assert_ne!(d, src);
            }
        }
    }

    #[test]
    fn tornado_shifts_half_the_width() {
        let m = mesh(8, 8);
        let mut rng = SimRng::seed_from(7);
        let src = m.node_at(Coord::new(1, 3)).unwrap();
        let d = Pattern::Tornado.dest(src, &m, &mut rng).unwrap();
        assert_eq!(m.coord(d), Coord::new(5, 3));
        // Wraps around the east edge.
        let src = m.node_at(Coord::new(6, 0)).unwrap();
        let d = Pattern::Tornado.dest(src, &m, &mut rng).unwrap();
        assert_eq!(m.coord(d), Coord::new(2, 0));
    }

    #[test]
    fn rotation_is_a_cycle_over_all_nodes() {
        let m = mesh(3, 3);
        let mut rng = SimRng::seed_from(8);
        let mut at = NodeId::new(0);
        for _ in 0..9 {
            at = Pattern::Rotation.dest(at, &m, &mut rng).unwrap();
        }
        assert_eq!(at, NodeId::new(0));
    }

    #[test]
    fn shuffle_is_deterministic_and_in_range() {
        let m = mesh(4, 4);
        let mut rng = SimRng::seed_from(9);
        for src in m.nodes() {
            if let Some(d) = Pattern::Shuffle.dest(src, &m, &mut rng) {
                assert!(d.index() < 16);
                assert_ne!(d, src);
                // Deterministic.
                assert_eq!(Pattern::Shuffle.dest(src, &m, &mut rng), Some(d));
            }
        }
    }

    #[test]
    fn quadrant_on_odd_mesh_is_total() {
        // 3x3: quadrant boundaries still partition all nodes.
        let m = mesh(3, 3);
        let total: usize = (0..4)
            .map(|q| m.nodes().filter(|n| quadrant_of(*n, &m) == q).count())
            .sum();
        assert_eq!(total, 9);
    }
}
