//! End-to-end fault injection and recovery: the tentpole acceptance tests.
//!
//! Under transient per-flit-hop drop/corruption faults with end-to-end
//! recovery enabled, every mechanism still delivers 100% of offered
//! packets; under a permanent link kill, routers detect the dead link,
//! gossip the fault, and route around it over the alive graph — the run
//! delivers all still-reachable traffic instead of wedging. Fault injection
//! is deterministic: the fault plane draws from its own forked RNG stream,
//! so seeded sweeps are bit-reproducible and fault-free runs are untouched.

use afc_noc::prelude::*;

fn mechanisms() -> Vec<(&'static str, Box<dyn afc_netsim::router::RouterFactory>)> {
    vec![
        ("backpressured", Box::new(BackpressuredFactory::new())),
        ("backpressureless", Box::new(DeflectionFactory::new())),
        ("drop", Box::new(DropFactory::new())),
        ("afc", Box::new(AfcFactory::paper())),
    ]
}

fn faulty_config(drop: f64, corrupt: f64) -> NetworkConfig {
    NetworkConfig {
        faults: FaultPlan::uniform_transient(drop, corrupt),
        retransmit: Some(RetransmitConfig::default()),
        ..NetworkConfig::paper_3x3()
    }
}

/// Acceptance: transient drop/corruption at 1e-3 per flit-hop, all four
/// mechanisms deliver everything, with recovery visibly doing work.
#[test]
fn all_mechanisms_deliver_everything_under_transient_faults() {
    for (name, factory) in mechanisms() {
        let out = run_fault_scenario(
            factory.as_ref(),
            &faulty_config(1e-3, 1e-3),
            RateSpec::Uniform(0.10),
            Pattern::UniformRandom,
            PacketMix::paper(),
            4_000,
            400_000,
            11,
        )
        .unwrap();
        assert!(
            out.error.is_none(),
            "{name}: unexpected error {:?}",
            out.error
        );
        assert!(out.drained, "{name}: network must drain");
        let s = &out.stats;
        assert_eq!(
            s.packets_delivered, s.packets_offered,
            "{name}: all offered packets must arrive"
        );
        assert!(s.faults_injected > 0, "{name}: faults must actually fire");
        assert!(
            s.recovered_packets > 0,
            "{name}: some packets must need end-to-end recovery"
        );
        out.network
            .audit()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        out.network
            .credit_audit()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

/// Acceptance (tentpole): a permanent mid-run link kill degrades gracefully.
/// Every mechanism — including the backpressured baseline, whose XY routing
/// previously wedged on the dead link — detects the kill, gossips the fault,
/// reroutes over the alive graph, and delivers all offered traffic (a 3x3
/// mesh stays connected with one dead link). Never `SimError::Stalled`,
/// never a hang, books balanced.
#[test]
fn permanent_link_kill_degrades_gracefully_without_stalling() {
    let mesh = NetworkConfig::paper_3x3().mesh().unwrap();
    let center = mesh.node_at(Coord::new(1, 1)).unwrap();
    for (name, factory) in mechanisms() {
        let cfg = NetworkConfig {
            faults: FaultPlan::none().kill_link(center, Direction::East, 500),
            retransmit: Some(RetransmitConfig::default()),
            stall_watchdog: 15_000,
            ..NetworkConfig::paper_3x3()
        };
        let out = run_fault_scenario(
            factory.as_ref(),
            &cfg,
            RateSpec::Uniform(0.10),
            Pattern::UniformRandom,
            PacketMix::paper(),
            2_000,
            100_000,
            11,
        )
        .unwrap();
        assert!(
            out.error.is_none(),
            "{name}: a kill on a still-connected mesh must not stall, got {:?}",
            out.error
        );
        assert!(out.drained, "{name}: network must drain");
        assert_eq!(
            out.stats.packets_delivered, out.stats.packets_offered,
            "{name}: every destination is still reachable"
        );
        assert_eq!(
            out.stats.links_failed, 1,
            "{name}: the kill must be detected"
        );
        assert!(
            out.stats.flits_lost_to_faults > 0,
            "{name}: the dead link must eat in-flight flits"
        );
        out.network
            .audit()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        out.network
            .credit_audit()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

/// The credit-conservation audit stays balanced while credit-loss faults
/// leak flow-control state.
#[test]
fn credit_audit_balances_under_credit_loss() {
    let cfg = NetworkConfig {
        faults: FaultPlan::none().with_credit_loss(2e-3),
        retransmit: Some(RetransmitConfig::default()),
        stall_watchdog: 50_000,
        ..NetworkConfig::paper_3x3()
    };
    let out = run_fault_scenario(
        &BackpressuredFactory::new(),
        &cfg,
        RateSpec::Uniform(0.08),
        Pattern::UniformRandom,
        PacketMix::paper(),
        5_000,
        200_000,
        3,
    )
    .unwrap();
    assert!(out.stats.credits_lost > 0, "credit faults must fire");
    // Lost credits permanently shrink VC capacity; the run may wedge once
    // enough leak. Either outcome must keep the books balanced.
    out.network.credit_audit().expect("credit conservation");
    out.network.audit().expect("flit conservation");
}

/// Regression: a dropped tail must not leave its input VC's route open for
/// the next packet, which could follow the stale route into a wrong Local
/// ejection. This exact scenario (transient drops, no retransmission)
/// panicked with "ejected at wrong node" before stale routes were recycled
/// by packet identity.
#[test]
fn stale_routes_from_dropped_tails_are_recycled() {
    let cfg = NetworkConfig {
        faults: FaultPlan::uniform_transient(5e-4, 5e-4),
        retransmit: None,
        ..NetworkConfig::paper_3x3()
    };
    let out = run_fault_scenario(
        &BackpressuredFactory::new(),
        &cfg,
        RateSpec::Uniform(0.10),
        Pattern::UniformRandom,
        PacketMix::paper(),
        5_000,
        300_000,
        1,
    )
    .unwrap();
    // Without retransmission some packets are simply lost; the run must
    // still terminate cleanly — drained or reported stalled, never a
    // misdelivery — with the conservation books balanced.
    assert!(
        matches!(out.error, None | Some(SimError::Stalled { .. })),
        "unexpected error {:?}",
        out.error
    );
    assert!(out.stats.flits_lost_to_faults > 0, "drops must fire");
    out.network.audit().expect("flit conservation");
}

/// Seeded fault sweeps are bit-reproducible: the fault plane draws from a
/// forked RNG stream keyed only by the run seed.
#[test]
fn seeded_fault_sweeps_are_bit_reproducible() {
    let sweep = |seed: u64| -> Vec<(u64, u64, u64, u64, u64)> {
        let mut points = Vec::new();
        for (_, factory) in mechanisms() {
            for rate in [5e-4, 1e-3] {
                let out = run_fault_scenario(
                    factory.as_ref(),
                    &faulty_config(rate, rate),
                    RateSpec::Uniform(0.10),
                    Pattern::UniformRandom,
                    PacketMix::paper(),
                    2_000,
                    200_000,
                    seed,
                )
                .unwrap();
                points.push((
                    out.stats.packets_delivered,
                    out.stats.faults_injected,
                    out.stats.retransmit_timeouts,
                    out.stats.recovered_packets,
                    out.stats.network_latency.sum(),
                ));
            }
        }
        points
    };
    assert_eq!(sweep(99), sweep(99), "same seed, same bits");
    assert_ne!(sweep(99), sweep(100), "different seed, different faults");
}

/// Recovery machinery is invisible when no faults fire: enabling
/// retransmission without a fault plan changes no delivery statistics.
#[test]
fn recovery_is_inert_without_faults() {
    let run = |retransmit: Option<RetransmitConfig>| {
        let cfg = NetworkConfig {
            retransmit,
            ..NetworkConfig::paper_3x3()
        };
        let out = run_fault_scenario(
            &AfcFactory::paper(),
            &cfg,
            RateSpec::Uniform(0.15),
            Pattern::UniformRandom,
            PacketMix::paper(),
            3_000,
            100_000,
            5,
        )
        .unwrap();
        assert!(out.error.is_none() && out.drained);
        (
            out.stats.flits_delivered,
            out.stats.network_latency.sum(),
            out.stats.retransmit_timeouts,
            out.stats.faults_injected,
        )
    };
    let with = run(Some(RetransmitConfig::default()));
    let without = run(None);
    assert_eq!(with.2, 0, "no timeouts may fire in a fault-free run");
    assert_eq!(with.3, 0, "no faults may be injected without a plan");
    assert_eq!(
        (with.0, with.1),
        (without.0, without.1),
        "recovery must not perturb fault-free behavior"
    );
}

/// Golden pin of one seeded fault run. An intentional change to fault
/// placement, recovery timing, or the RNG fork discipline WILL move these
/// numbers — update them deliberately, with the diff in review.
#[test]
fn golden_fault_run_is_pinned() {
    let out = run_fault_scenario(
        &BackpressuredFactory::new(),
        &faulty_config(1e-3, 1e-3),
        RateSpec::Uniform(0.10),
        Pattern::UniformRandom,
        PacketMix::paper(),
        3_000,
        200_000,
        0xFA_1175,
    )
    .unwrap();
    assert!(out.error.is_none() && out.drained);
    let s = &out.stats;
    let got = (
        s.packets_offered,
        s.packets_delivered,
        s.faults_injected,
        s.flits_lost_to_faults,
        s.flits_corrupted,
        s.retransmit_timeouts,
        s.recovered_packets,
        s.duplicate_flits_discarded,
        s.flits_retransmitted,
        s.network_latency.sum(),
    );
    assert_eq!(
        got,
        (322, 322, 12, 6, 6, 10, 9, 148, 160, 7734),
        "got {got:?}"
    );
}
