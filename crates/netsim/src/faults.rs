//! Deterministic fault injection: the configured *fault plane*.
//!
//! A [`FaultPlan`] describes every fault a run should experience — transient
//! flit drop/corruption on links, permanent link kills, router stalls, and
//! credit loss on the reverse lanes. The plan lives in
//! [`NetworkConfig`](crate::config::NetworkConfig) and is evaluated by the
//! network engine with a dedicated RNG stream forked from the run seed, so a
//! given `(config, seed)` pair reproduces the *exact same* fault sequence
//! cycle for cycle. Every injected fault is counted in
//! [`NetworkStats`](crate::stats::NetworkStats) and recorded in the
//! network's fault log for trace analysis.
//!
//! Fault semantics:
//!
//! * **Transient drop** — an arriving flit silently vanishes with the given
//!   per-flit-hop probability inside the window. Recovery requires the
//!   NI-level retransmit timeout (see
//!   [`RetransmitConfig`](crate::config::RetransmitConfig)).
//! * **Transient corruption** — an arriving flit's checksum is damaged; the
//!   destination NI detects the mismatch at reassembly and NACKs the flit
//!   back to its source for retransmission.
//! * **Kill** — from cycle `at` onward the link delivers nothing; every
//!   flit pushed onto it is lost (counted as a fault drop).
//! * **Router stall** — the router freezes for a window: it neither
//!   arbitrates nor accepts injections, and its incoming links hold their
//!   flits (delivered one per cycle once the stall lifts).
//! * **Credit loss** — an arriving credit vanishes with the given
//!   probability, modeling a glitched reverse lane. Exercised by the
//!   credit-conservation audit
//!   ([`Network::credit_audit`](crate::network::Network::credit_audit)).

use crate::flit::{Cycle, Flit, PacketId};
use crate::geom::{Direction, NodeId};
use crate::rng::SimRng;

/// A half-open cycle interval `[start, end)` during which a fault is armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// First cycle (inclusive) the fault is active.
    pub start: Cycle,
    /// First cycle (exclusive) after which the fault is inert.
    pub end: Cycle,
}

impl FaultWindow {
    /// A window covering the whole run.
    pub const ALWAYS: FaultWindow = FaultWindow {
        start: 0,
        end: Cycle::MAX,
    };

    /// Whether `now` falls inside the window.
    pub fn contains(&self, now: Cycle) -> bool {
        self.start <= now && now < self.end
    }
}

/// Which links a [`LinkFault`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSelector {
    /// Every directed link in the mesh.
    All,
    /// The single directed link leaving `from` toward `dir`.
    Link {
        /// Upstream endpoint.
        from: NodeId,
        /// Outgoing direction at the upstream endpoint.
        dir: Direction,
    },
}

impl LinkSelector {
    /// Whether the selector covers the directed link `from -> dir`.
    pub fn matches(&self, from: NodeId, dir: Direction) -> bool {
        match self {
            LinkSelector::All => true,
            LinkSelector::Link { from: f, dir: d } => *f == from && *d == dir,
        }
    }
}

/// What a link fault does to the traffic crossing it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkFaultKind {
    /// Drop each arriving flit with probability `rate` inside `window`.
    TransientDrop {
        /// Per-flit drop probability in `[0, 1]`.
        rate: f64,
        /// Active interval.
        window: FaultWindow,
    },
    /// Corrupt each arriving flit's checksum with probability `rate`.
    TransientCorrupt {
        /// Per-flit corruption probability in `[0, 1]`.
        rate: f64,
        /// Active interval.
        window: FaultWindow,
    },
    /// Permanently kill the link: nothing arrives from cycle `at` onward.
    KillAt {
        /// Cycle of the kill.
        at: Cycle,
    },
    /// Drop each arriving credit with probability `rate` inside `window`.
    CreditLoss {
        /// Per-credit loss probability in `[0, 1]`.
        rate: f64,
        /// Active interval.
        window: FaultWindow,
    },
}

/// One fault bound to a set of links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Links the fault applies to.
    pub selector: LinkSelector,
    /// Fault behavior.
    pub kind: LinkFaultKind,
}

/// A router frozen for `cycles` cycles starting at `from`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterStall {
    /// Stalled node.
    pub node: NodeId,
    /// First stalled cycle.
    pub from: Cycle,
    /// Stall length in cycles.
    pub cycles: u64,
}

impl RouterStall {
    /// Whether the stall covers `now`.
    pub fn contains(&self, now: Cycle) -> bool {
        self.from <= now && now < self.from.saturating_add(self.cycles)
    }
}

/// The complete fault schedule for one run.
///
/// An empty plan (the default) injects nothing and costs nothing on the hot
/// path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Link-level faults, evaluated in order for every matching arrival.
    pub link_faults: Vec<LinkFault>,
    /// Router stall windows.
    pub router_stalls: Vec<RouterStall>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.link_faults.is_empty() && self.router_stalls.is_empty()
    }

    /// Uniform transient faults on every link for the whole run: flits drop
    /// with `drop_rate` and corrupt with `corrupt_rate`.
    pub fn uniform_transient(drop_rate: f64, corrupt_rate: f64) -> FaultPlan {
        let mut plan = FaultPlan::none();
        if drop_rate > 0.0 {
            plan.link_faults.push(LinkFault {
                selector: LinkSelector::All,
                kind: LinkFaultKind::TransientDrop {
                    rate: drop_rate,
                    window: FaultWindow::ALWAYS,
                },
            });
        }
        if corrupt_rate > 0.0 {
            plan.link_faults.push(LinkFault {
                selector: LinkSelector::All,
                kind: LinkFaultKind::TransientCorrupt {
                    rate: corrupt_rate,
                    window: FaultWindow::ALWAYS,
                },
            });
        }
        plan
    }

    /// Adds a permanent kill of the directed link `from -> dir` at `at`.
    pub fn kill_link(mut self, from: NodeId, dir: Direction, at: Cycle) -> FaultPlan {
        self.link_faults.push(LinkFault {
            selector: LinkSelector::Link { from, dir },
            kind: LinkFaultKind::KillAt { at },
        });
        self
    }

    /// Adds uniform credit loss on every link for the whole run.
    pub fn with_credit_loss(mut self, rate: f64) -> FaultPlan {
        self.link_faults.push(LinkFault {
            selector: LinkSelector::All,
            kind: LinkFaultKind::CreditLoss {
                rate,
                window: FaultWindow::ALWAYS,
            },
        });
        self
    }

    /// Adds a router stall window.
    pub fn with_stall(mut self, node: NodeId, from: Cycle, cycles: u64) -> FaultPlan {
        self.router_stalls.push(RouterStall { node, from, cycles });
        self
    }

    /// Validates rates and windows.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::OutOfRange`](crate::error::ConfigError) for a
    /// probability outside `[0, 1]` or an inverted window.
    pub fn validate(&self) -> Result<(), crate::error::ConfigError> {
        use crate::error::ConfigError;
        for f in &self.link_faults {
            let (rate, window) = match f.kind {
                LinkFaultKind::TransientDrop { rate, window }
                | LinkFaultKind::TransientCorrupt { rate, window }
                | LinkFaultKind::CreditLoss { rate, window } => (rate, Some(window)),
                LinkFaultKind::KillAt { .. } => (0.0, None),
            };
            if !(0.0..=1.0).contains(&rate) {
                return Err(ConfigError::OutOfRange {
                    what: "fault rate",
                    range: "0.0..=1.0",
                });
            }
            if let Some(w) = window {
                if w.end < w.start {
                    return Err(ConfigError::OutOfRange {
                        what: "fault window",
                        range: "start <= end",
                    });
                }
            }
        }
        Ok(())
    }

    /// Whether `node` is frozen at `now`.
    pub fn router_stalled(&self, node: NodeId, now: Cycle) -> bool {
        self.router_stalls
            .iter()
            .any(|s| s.node == node && s.contains(now))
    }

    /// Decides the fate of a flit arriving over the link `from -> dir` at
    /// `now`, drawing from `rng` only when an armed fault matches (so an
    /// empty or inactive plan leaves the stream untouched).
    pub fn flit_fate(
        &self,
        from: NodeId,
        dir: Direction,
        now: Cycle,
        rng: &mut SimRng,
    ) -> FlitFate {
        let mut fate = FlitFate::Deliver;
        for f in &self.link_faults {
            if !f.selector.matches(from, dir) {
                continue;
            }
            match f.kind {
                LinkFaultKind::KillAt { at } if now >= at => return FlitFate::Drop,
                LinkFaultKind::TransientDrop { rate, window }
                    if window.contains(now) && rate > 0.0 && rng.gen_bool(rate) =>
                {
                    return FlitFate::Drop;
                }
                LinkFaultKind::TransientCorrupt { rate, window }
                    if window.contains(now) && rate > 0.0 && rng.gen_bool(rate) =>
                {
                    fate = FlitFate::Corrupt;
                }
                _ => {}
            }
        }
        fate
    }

    /// Whether a credit arriving over `from -> dir` at `now` is lost.
    pub fn credit_lost(&self, from: NodeId, dir: Direction, now: Cycle, rng: &mut SimRng) -> bool {
        for f in &self.link_faults {
            if !f.selector.matches(from, dir) {
                continue;
            }
            match f.kind {
                LinkFaultKind::KillAt { at } if now >= at => return true,
                LinkFaultKind::CreditLoss { rate, window }
                    if window.contains(now) && rate > 0.0 && rng.gen_bool(rate) =>
                {
                    return true;
                }
                _ => {}
            }
        }
        false
    }
}

/// Outcome of evaluating the fault plane for one arriving flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlitFate {
    /// Delivered untouched.
    Deliver,
    /// Silently lost on the link.
    Drop,
    /// Delivered with a damaged checksum.
    Corrupt,
}

/// One injected fault, as recorded in the network's fault log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle of the event.
    pub cycle: Cycle,
    /// Upstream endpoint of the affected link (or the stalled node).
    pub from: NodeId,
    /// Direction of the affected link (meaningless for stalls).
    pub dir: Direction,
    /// What happened.
    pub kind: FaultEventKind,
}

/// The kind of an injected fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEventKind {
    /// A flit was dropped on the link.
    FlitDropped {
        /// Packet the flit belonged to.
        packet: PacketId,
        /// Flit sequence number.
        seq: u16,
    },
    /// A flit was corrupted on the link.
    FlitCorrupted {
        /// Packet the flit belonged to.
        packet: PacketId,
        /// Flit sequence number.
        seq: u16,
    },
    /// A credit was lost on the reverse lane.
    CreditLost,
}

impl FaultEvent {
    /// Builds the log record for a flit-affecting fault.
    pub fn for_flit(
        cycle: Cycle,
        from: NodeId,
        dir: Direction,
        flit: &Flit,
        dropped: bool,
    ) -> FaultEvent {
        let kind = if dropped {
            FaultEventKind::FlitDropped {
                packet: flit.packet,
                seq: flit.seq,
            }
        } else {
            FaultEventKind::FlitCorrupted {
                packet: flit.packet,
                seq: flit.seq,
            }
        };
        FaultEvent {
            cycle,
            from,
            dir,
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_delivers_everything_without_touching_rng() {
        let plan = FaultPlan::none();
        let mut rng = SimRng::seed_from(1);
        let before = rng.clone();
        for now in 0..100 {
            assert_eq!(
                plan.flit_fate(NodeId::new(0), Direction::East, now, &mut rng),
                FlitFate::Deliver
            );
            assert!(!plan.credit_lost(NodeId::new(0), Direction::East, now, &mut rng));
        }
        assert_eq!(rng, before, "no fault may consume randomness");
    }

    #[test]
    fn kill_is_absolute_after_the_cycle() {
        let plan = FaultPlan::none().kill_link(NodeId::new(3), Direction::North, 50);
        let mut rng = SimRng::seed_from(2);
        assert_eq!(
            plan.flit_fate(NodeId::new(3), Direction::North, 49, &mut rng),
            FlitFate::Deliver
        );
        assert_eq!(
            plan.flit_fate(NodeId::new(3), Direction::North, 50, &mut rng),
            FlitFate::Drop
        );
        // Other links are untouched.
        assert_eq!(
            plan.flit_fate(NodeId::new(3), Direction::South, 1_000, &mut rng),
            FlitFate::Deliver
        );
        assert!(plan.credit_lost(NodeId::new(3), Direction::North, 60, &mut rng));
    }

    #[test]
    fn transient_rates_hit_roughly_proportionally() {
        let plan = FaultPlan::uniform_transient(0.25, 0.0);
        let mut rng = SimRng::seed_from(3);
        let drops = (0..10_000)
            .filter(|&now| {
                plan.flit_fate(NodeId::new(0), Direction::East, now, &mut rng) == FlitFate::Drop
            })
            .count();
        assert!((2_000..3_000).contains(&drops), "got {drops}");
    }

    #[test]
    fn windows_gate_faults() {
        let plan = FaultPlan {
            link_faults: vec![LinkFault {
                selector: LinkSelector::All,
                kind: LinkFaultKind::TransientDrop {
                    rate: 1.0,
                    window: FaultWindow { start: 10, end: 20 },
                },
            }],
            router_stalls: vec![],
        };
        let mut rng = SimRng::seed_from(4);
        assert_eq!(
            plan.flit_fate(NodeId::new(0), Direction::East, 9, &mut rng),
            FlitFate::Deliver
        );
        assert_eq!(
            plan.flit_fate(NodeId::new(0), Direction::East, 10, &mut rng),
            FlitFate::Drop
        );
        assert_eq!(
            plan.flit_fate(NodeId::new(0), Direction::East, 20, &mut rng),
            FlitFate::Deliver
        );
    }

    #[test]
    fn stall_windows() {
        let plan = FaultPlan::none().with_stall(NodeId::new(4), 100, 10);
        assert!(!plan.router_stalled(NodeId::new(4), 99));
        assert!(plan.router_stalled(NodeId::new(4), 100));
        assert!(plan.router_stalled(NodeId::new(4), 109));
        assert!(!plan.router_stalled(NodeId::new(4), 110));
        assert!(!plan.router_stalled(NodeId::new(5), 105));
    }

    #[test]
    fn validation_rejects_bad_rates() {
        let plan = FaultPlan::uniform_transient(1.5, 0.0);
        assert!(plan.validate().is_err());
        assert!(FaultPlan::uniform_transient(0.001, 0.001)
            .validate()
            .is_ok());
        assert!(FaultPlan::none().validate().is_ok());
    }
}
