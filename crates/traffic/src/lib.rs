//! # afc-traffic — traffic generation and run orchestration
//!
//! Two families of traffic drive the `afc-netsim` kernel:
//!
//! * [`openloop`] — Bernoulli packet injection at configured per-node rates
//!   with synthetic destination [`synthetic::Pattern`]s (uniform random,
//!   transpose, bit-complement, near-neighbor, hotspot, quadrant). Used for
//!   the latency-throughput sweeps and the Section V-B spatial-variation
//!   experiment.
//! * [`closedloop`] — the substitute for the paper's Simics/GEMS
//!   full-system stack: per-node multithreaded cores issuing MSHR-bounded
//!   request/reply memory transactions against address-hashed L2 banks,
//!   with dirty writebacks. Execution time feeds back into injection, as
//!   the paper's methodology requires. [`workloads`] provides the six
//!   calibrated presets of Table III.
//!
//! [`runner`] wraps both in warmup/measure harnesses returning
//! [`runner::RunOutcome`]s ready for energy pricing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closedloop;
pub mod openloop;
pub mod runner;
pub mod synthetic;
pub mod trace;
pub mod workloads;

pub use closedloop::{ClosedLoopTraffic, WorkloadParams};
pub use openloop::{OpenLoopTraffic, PacketMix, RateSpec};
pub use runner::{
    run_closed_loop, run_closed_loop_checkpointed, run_fault_scenario, run_open_loop,
    CheckpointPolicy, CheckpointedRunError, FaultRunOutcome, RunOutcome,
};
pub use synthetic::Pattern;
pub use trace::{TraceReplay, TrafficTrace};
