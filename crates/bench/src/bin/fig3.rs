//! Figure 3: network energy breakdown (buffer / link / rest of router),
//! normalized to the backpressured baseline's total.
//!
//! `--low` prints Figure 3(a) (SPLASH-2 benchmarks), `--high` prints
//! Figure 3(b) (commercial benchmarks); default prints both. `--quick`
//! shortens the runs.

use afc_bench::experiments::{cell, closed_loop_matrix};
use afc_bench::mechanisms::fig2_mechanisms;
use afc_bench::report::{ratio, Table};
use afc_netsim::config::NetworkConfig;
use afc_traffic::closedloop::WorkloadParams;
use afc_traffic::workloads;

fn panel(title: &str, wls: &[WorkloadParams], warmup: u64, measure: u64) {
    let cfg = NetworkConfig::paper_3x3();
    let mechs = fig2_mechanisms();
    let rows = closed_loop_matrix(&mechs, wls, &cfg, warmup, measure, 50_000_000, 1);
    println!("{title}\n");
    for w in wls {
        let base = cell(&rows, w.name, "backpressured").energy.total();
        let mut t = Table::new(vec!["mechanism", "buffer", "link", "rest", "total"]);
        for m in &mechs {
            let e = &cell(&rows, w.name, m.label).energy;
            t.row(vec![
                m.label.to_string(),
                ratio(e.buffer() / base),
                ratio(e.link / base),
                ratio(e.rest_of_router() / base),
                ratio(e.total() / base),
            ]);
        }
        println!("{}:", w.name);
        println!("{}", t.render());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    afc_bench::sweep::parse_threads_arg_or_exit(&args);
    let explicit = |f: &str| args.iter().any(|a| a == f);
    let want = |f: &str| (!explicit("--low") && !explicit("--high")) || explicit(f);
    let (warmup, measure) = if explicit("--quick") {
        (100, 400)
    } else {
        (500, 2_000)
    };
    if want("--low") {
        panel(
            "Figure 3(a): energy breakdown, low-load applications (normalized to backpressured total)",
            &workloads::low_load(),
            warmup,
            measure,
        );
    }
    if want("--high") {
        panel(
            "Figure 3(b): energy breakdown, high-load applications (normalized to backpressured total)",
            &workloads::high_load(),
            warmup,
            measure,
        );
    }
    let timing = afc_bench::sweep::write_timing_report("fig3").expect("writable results dir");
    println!("(timing: {})", timing.display());
}
