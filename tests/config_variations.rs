//! The simulator beyond the paper's Table II point: different link
//! latencies, ejection bandwidths and mesh shapes, and the AFC
//! configuration-validation rules that tie the gossip threshold to buffer
//! capacity.

use afc_noc::prelude::*;

fn mechanisms() -> Vec<Box<dyn afc_netsim::router::RouterFactory>> {
    vec![
        Box::new(BackpressuredFactory::new()),
        Box::new(DeflectionFactory::new()),
        Box::new(DropFactory::new()),
        Box::new(AfcFactory::paper()),
    ]
}

fn run_and_check(cfg: &NetworkConfig, factory: &dyn afc_netsim::router::RouterFactory) {
    let network = Network::new(cfg.clone(), factory, 21).unwrap();
    let traffic = OpenLoopTraffic::new(
        RateSpec::Uniform(0.08),
        Pattern::UniformRandom,
        PacketMix::paper(),
        21,
    );
    let mut sim = Simulation::new(network, traffic);
    sim.run(4_000);
    sim.traffic.stop();
    assert!(
        sim.drain(500_000),
        "{} on {}x{} L={} eject={} must drain",
        factory.name(),
        cfg.width,
        cfg.height,
        cfg.link_latency,
        cfg.eject_bandwidth
    );
    let stats = sim.network.stats();
    assert_eq!(stats.packets_delivered, stats.packets_offered);
    sim.network.audit().expect("conservation");
}

#[test]
fn single_cycle_links_work_everywhere() {
    let cfg = NetworkConfig {
        link_latency: 1,
        ..NetworkConfig::paper_3x3()
    };
    for f in mechanisms() {
        run_and_check(&cfg, f.as_ref());
    }
}

#[test]
fn long_links_need_bigger_afc_control_buffers() {
    // With L = 4 the gossip threshold is 2*4 + 2 = 10, which exceeds the
    // default 8 one-flit control VCs: AFC must refuse the configuration...
    let cfg = NetworkConfig {
        link_latency: 4,
        ..NetworkConfig::paper_3x3()
    };
    let err = AfcConfig::paper().validate(&cfg).unwrap_err();
    assert!(matches!(
        err,
        afc_netsim::error::ConfigError::BufferTooSmallForGossip {
            capacity: 8,
            required: 10,
            ..
        }
    ));
    // ...and accept it once the control vnets are provisioned for the
    // longer in-flight window.
    let afc_cfg = AfcConfig {
        control_vcs: 12,
        ..AfcConfig::paper()
    };
    afc_cfg.validate(&cfg).expect("12 control VCs cover X = 10");
    run_and_check(&cfg, &AfcFactory::new(afc_cfg));
    // The fixed mechanisms have no such constraint.
    run_and_check(&cfg, &BackpressuredFactory::new());
    run_and_check(&cfg, &DeflectionFactory::new());
}

#[test]
fn wider_ejection_ports_help_the_deflection_router() {
    // Deflection routers deflect locally-destined flits beyond the
    // ejection bandwidth; widening the port reduces deflections.
    let run = |eject: usize| {
        let cfg = NetworkConfig {
            eject_bandwidth: eject,
            ..NetworkConfig::paper_3x3()
        };
        let out = run_open_loop(
            &DeflectionFactory::new(),
            &cfg,
            RateSpec::Uniform(0.45),
            Pattern::UniformRandom,
            PacketMix::paper(),
            2_000,
            8_000,
            23,
        )
        .unwrap();
        out.stats.flit_deflections.mean().unwrap()
    };
    let narrow = run(1);
    let wide = run(2);
    assert!(
        wide < narrow,
        "doubling ejection bandwidth must cut deflections ({narrow:.3} -> {wide:.3})"
    );
}

#[test]
fn non_square_meshes_route_correctly() {
    for (w, h) in [(4, 2), (2, 4), (5, 3), (1, 4)] {
        let cfg = NetworkConfig {
            width: w,
            height: h,
            ..NetworkConfig::paper_3x3()
        };
        for f in mechanisms() {
            run_and_check(&cfg, f.as_ref());
        }
    }
}

#[test]
fn afc_adapts_on_larger_meshes_too() {
    // 5x5 mesh under the apache-class load: the interior still switches.
    let cfg = NetworkConfig {
        width: 5,
        height: 5,
        ..NetworkConfig::paper_3x3()
    };
    let out = run_closed_loop(
        &AfcFactory::paper(),
        &cfg,
        workloads::apache(),
        100,
        400,
        50_000_000,
        25,
    )
    .unwrap();
    assert!(
        out.stats.backpressured_fraction() > 0.5,
        "high load must flip a 5x5 AFC mesh backpressured (got {:.2})",
        out.stats.backpressured_fraction()
    );
    let low = run_closed_loop(
        &AfcFactory::paper(),
        &cfg,
        workloads::water(),
        100,
        400,
        50_000_000,
        25,
    )
    .unwrap();
    assert!(low.stats.backpressured_fraction() < 0.05);
}

#[test]
fn little_law_holds_in_open_loop_steady_state() {
    // Little's law: mean flits in flight = arrival rate x mean latency.
    // Checked loosely on the backpressured network at moderate load.
    let cfg = NetworkConfig::paper_3x3();
    let network = Network::new(cfg, &BackpressuredFactory::new(), 27).unwrap();
    let traffic = OpenLoopTraffic::new(
        RateSpec::Uniform(0.3),
        Pattern::UniformRandom,
        PacketMix::single_flit(),
        27,
    );
    let mut sim = Simulation::new(network, traffic);
    sim.run(3_000);
    sim.network.reset_metrics();
    let mut occupancy_sum = 0usize;
    let cycles = 12_000;
    for _ in 0..cycles {
        sim.step();
        occupancy_sum += sim.network.flits_in_network();
    }
    let stats = sim.network.stats();
    let lambda = stats.flits_delivered as f64 / cycles as f64;
    let mean_latency = stats.network_latency.mean().unwrap();
    let mean_in_flight = occupancy_sum as f64 / cycles as f64;
    let littles = lambda * mean_latency;
    let err = (mean_in_flight - littles).abs() / littles;
    assert!(
        err < 0.15,
        "Little's law: in-flight {mean_in_flight:.1} vs lambda*W {littles:.1} ({err:.2})"
    );
}
