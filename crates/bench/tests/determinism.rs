//! Determinism regression tests for the sweep engine: results must be
//! bit-identical regardless of worker count, reproducible for a fixed
//! seed, and actually sensitive to the seed (a sweep whose outputs never
//! change with the seed would be vacuous determinism).
//!
//! Byte equality of [`SweepResults::serialize`] is the comparison:
//! floats are rendered with `{:?}` (shortest round-trip), so equal bytes
//! means equal bits.

use afc_bench::sweep::{RunKind, RunSpec, SweepSpec};
use afc_bench::MechanismId;
use afc_netsim::config::NetworkConfig;
use afc_traffic::openloop::PacketMix;
use afc_traffic::synthetic::Pattern;
use afc_traffic::workloads;

/// A deliberately heterogeneous spec: closed-loop, open-loop, and fault
/// runs across all four paper mechanisms, so the thread-count sweep
/// exercises every executor path.
fn mixed_spec(seed: u64) -> SweepSpec {
    let workload = workloads::all()[0];
    let mut runs = Vec::new();
    for &mechanism in &[
        MechanismId::Backpressured,
        MechanismId::Backpressureless,
        MechanismId::Drop,
        MechanismId::Afc,
    ] {
        runs.push(RunSpec {
            mechanism,
            seed,
            kind: RunKind::OpenLoop {
                rate: 0.15,
                pattern: Pattern::UniformRandom,
                mix: PacketMix::paper(),
                warmup_cycles: 500,
                measure_cycles: 1_500,
            },
        });
        runs.push(RunSpec {
            mechanism,
            seed,
            kind: RunKind::Fault {
                rate: 0.10,
                drop_rate: 5e-4,
                corrupt_rate: 5e-4,
                inject_cycles: 1_000,
                drain_cycles: 100_000,
            },
        });
    }
    runs.push(RunSpec {
        mechanism: MechanismId::Afc,
        seed,
        kind: RunKind::ClosedLoop {
            workload,
            warmup_txns: 50,
            measure_txns: 200,
            max_cycles: 500_000,
        },
    });
    SweepSpec {
        name: "determinism-test".into(),
        net_cfg: NetworkConfig::paper_3x3(),
        runs,
    }
}

#[test]
fn results_are_byte_identical_across_thread_counts() {
    let spec = mixed_spec(7);
    let serial = spec.execute_with_threads(1).serialize();
    for threads in [2, 8] {
        let parallel = spec.execute_with_threads(threads).serialize();
        assert_eq!(
            serial, parallel,
            "sweep results differ between 1 and {threads} threads"
        );
    }
}

#[test]
fn same_seed_reproduces_bit_identical_results() {
    let a = mixed_spec(42).execute_with_threads(2).serialize();
    let b = mixed_spec(42).execute_with_threads(2).serialize();
    assert_eq!(a, b, "identical specs must reproduce identical bytes");
}

#[test]
fn different_seeds_produce_different_results() {
    let a = mixed_spec(1).execute_with_threads(2).serialize();
    let b = mixed_spec(2).execute_with_threads(2).serialize();
    assert_ne!(
        a, b,
        "seed change left every run output untouched — runs are ignoring their seed"
    );
}

#[test]
fn output_rows_stay_in_spec_order() {
    let spec = mixed_spec(3);
    let results = spec.execute_with_threads(8);
    assert_eq!(results.outputs.len(), spec.runs.len());
    for (run, out) in spec.runs.iter().zip(&results.outputs) {
        assert_eq!(
            run.label(),
            out.label,
            "output row order does not match spec order"
        );
    }
}
