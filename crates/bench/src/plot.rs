//! Minimal dependency-free SVG chart rendering, for figure artifacts that
//! can go straight into a report.

use std::fmt::Write as _;

/// Fixed series palette (colorblind-safe-ish).
const PALETTE: [&str; 6] = [
    "#3465a4", "#cc0000", "#4e9a06", "#f57900", "#75507b", "#555753",
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// An XY line chart with one or more named series.
///
/// # Examples
///
/// ```
/// use afc_bench::plot::LineChart;
/// let mut c = LineChart::new("latency vs load", "offered", "cycles");
/// c.series("afc", vec![(0.1, 17.0), (0.5, 32.0)]);
/// let svg = c.render_svg();
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("afc"));
/// ```
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl LineChart {
    /// Creates an empty chart.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> LineChart {
        LineChart {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
        }
    }

    /// Adds a named series (points need not be sorted; they are drawn in
    /// order).
    pub fn series(&mut self, name: &str, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.push((name.to_string(), points));
        self
    }

    fn bounds(&self) -> (f64, f64, f64, f64) {
        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for (_, pts) in &self.series {
            for (x, y) in pts {
                if x.is_finite() && y.is_finite() {
                    xs.push(*x);
                    ys.push(*y);
                }
            }
        }
        let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        let max = |v: &[f64]| v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if xs.is_empty() {
            (0.0, 1.0, 0.0, 1.0)
        } else {
            let (x0, x1) = (min(&xs), max(&xs));
            let (y0, y1) = (0.0f64.min(min(&ys)), max(&ys));
            (
                x0,
                if x1 > x0 { x1 } else { x0 + 1.0 },
                y0,
                if y1 > y0 { y1 } else { y0 + 1.0 },
            )
        }
    }

    /// Renders the chart as a standalone SVG document.
    pub fn render_svg(&self) -> String {
        const W: f64 = 640.0;
        const H: f64 = 420.0;
        const ML: f64 = 60.0; // margins
        const MR: f64 = 140.0;
        const MT: f64 = 40.0;
        const MB: f64 = 50.0;
        let (x0, x1, y0, y1) = self.bounds();
        let sx = |x: f64| ML + (x - x0) / (x1 - x0) * (W - ML - MR);
        let sy = |y: f64| H - MB - (y - y0) / (y1 - y0) * (H - MT - MB);

        let mut s = String::new();
        let _ = write!(
            s,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}">"#
        );
        let _ = write!(
            s,
            r#"<rect width="{W}" height="{H}" fill="white"/><text x="{}" y="24" text-anchor="middle" font-family="sans-serif" font-size="15">{}</text>"#,
            W / 2.0,
            esc(&self.title)
        );
        // Axes.
        let _ = write!(
            s,
            r#"<line x1="{ML}" y1="{}" x2="{}" y2="{}" stroke="black"/><line x1="{ML}" y1="{MT}" x2="{ML}" y2="{}" stroke="black"/>"#,
            H - MB,
            W - MR,
            H - MB,
            H - MB
        );
        // Axis labels and min/max ticks.
        let _ = write!(
            s,
            r#"<text x="{}" y="{}" text-anchor="middle" font-family="sans-serif" font-size="12">{}</text>"#,
            (ML + W - MR) / 2.0,
            H - 12.0,
            esc(&self.x_label)
        );
        let _ = write!(
            s,
            r#"<text x="16" y="{}" text-anchor="middle" font-family="sans-serif" font-size="12" transform="rotate(-90 16 {})">{}</text>"#,
            (MT + H - MB) / 2.0,
            (MT + H - MB) / 2.0,
            esc(&self.y_label)
        );
        for (v, x, y, anchor) in [
            (x0, sx(x0), H - MB + 16.0, "middle"),
            (x1, sx(x1), H - MB + 16.0, "middle"),
            (y0, ML - 6.0, sy(y0) + 4.0, "end"),
            (y1, ML - 6.0, sy(y1) + 4.0, "end"),
        ] {
            let _ = write!(
                s,
                r#"<text x="{x}" y="{y}" text-anchor="{anchor}" font-family="sans-serif" font-size="11">{v:.2}</text>"#
            );
        }
        // Series.
        for (i, (name, pts)) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let path: Vec<String> = pts
                .iter()
                .filter(|(x, y)| x.is_finite() && y.is_finite())
                .map(|(x, y)| format!("{:.1},{:.1}", sx(*x), sy(*y)))
                .collect();
            if !path.is_empty() {
                let _ = write!(
                    s,
                    r#"<polyline fill="none" stroke="{color}" stroke-width="2" points="{}"/>"#,
                    path.join(" ")
                );
            }
            for p in &path {
                let (px, py) = p.split_once(',').expect("formatted above");
                let _ = write!(s, r#"<circle cx="{px}" cy="{py}" r="3" fill="{color}"/>"#);
            }
            let ly = MT + 16.0 * i as f64;
            let _ = write!(
                s,
                r#"<rect x="{}" y="{}" width="12" height="12" fill="{color}"/><text x="{}" y="{}" font-family="sans-serif" font-size="12">{}</text>"#,
                W - MR + 10.0,
                ly,
                W - MR + 28.0,
                ly + 10.0,
                esc(name)
            );
        }
        s.push_str("</svg>");
        s
    }
}

/// A grouped vertical bar chart (one group per category, one bar per
/// series).
#[derive(Debug, Clone)]
pub struct GroupedBars {
    title: String,
    groups: Vec<String>,
    series: Vec<(String, Vec<f64>)>,
}

impl GroupedBars {
    /// Creates a chart over the given group (category) names.
    pub fn new(title: &str, groups: Vec<String>) -> GroupedBars {
        GroupedBars {
            title: title.to_string(),
            groups,
            series: Vec::new(),
        }
    }

    /// Adds a series; `values` must have one entry per group.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn series(&mut self, name: &str, values: Vec<f64>) -> &mut Self {
        assert_eq!(values.len(), self.groups.len(), "one value per group");
        self.series.push((name.to_string(), values));
        self
    }

    /// Renders the chart as a standalone SVG document.
    pub fn render_svg(&self) -> String {
        const W: f64 = 640.0;
        const H: f64 = 420.0;
        const ML: f64 = 60.0;
        const MR: f64 = 150.0;
        const MT: f64 = 40.0;
        const MB: f64 = 50.0;
        let max = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(f64::MIN_POSITIVE, f64::max);
        let plot_w = W - ML - MR;
        let plot_h = H - MT - MB;
        let groups = self.groups.len().max(1) as f64;
        let bars = self.series.len().max(1) as f64;
        let group_w = plot_w / groups;
        let bar_w = (group_w * 0.8) / bars;

        let mut s = String::new();
        let _ = write!(
            s,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}">"#
        );
        let _ = write!(
            s,
            r#"<rect width="{W}" height="{H}" fill="white"/><text x="{}" y="24" text-anchor="middle" font-family="sans-serif" font-size="15">{}</text>"#,
            W / 2.0,
            esc(&self.title)
        );
        let _ = write!(
            s,
            r#"<line x1="{ML}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
            H - MB,
            W - MR,
            H - MB
        );
        for (g, gname) in self.groups.iter().enumerate() {
            let gx = ML + g as f64 * group_w;
            let _ = write!(
                s,
                r#"<text x="{}" y="{}" text-anchor="middle" font-family="sans-serif" font-size="12">{}</text>"#,
                gx + group_w / 2.0,
                H - MB + 18.0,
                esc(gname)
            );
            for (i, (_, values)) in self.series.iter().enumerate() {
                let v = values[g];
                let h = (v / max) * plot_h;
                let x = gx + group_w * 0.1 + i as f64 * bar_w;
                let _ = write!(
                    s,
                    r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="{}"/>"#,
                    x,
                    H - MB - h,
                    bar_w * 0.9,
                    h,
                    PALETTE[i % PALETTE.len()]
                );
            }
        }
        for (i, (name, _)) in self.series.iter().enumerate() {
            let ly = MT + 16.0 * i as f64;
            let _ = write!(
                s,
                r#"<rect x="{}" y="{}" width="12" height="12" fill="{}"/><text x="{}" y="{}" font-family="sans-serif" font-size="12">{}</text>"#,
                W - MR + 10.0,
                ly,
                PALETTE[i % PALETTE.len()],
                W - MR + 28.0,
                ly + 10.0,
                esc(name)
            );
        }
        s.push_str("</svg>");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced(svg: &str) -> bool {
        svg.matches("<svg").count() == svg.matches("</svg>").count()
            && svg.matches("<text").count() == svg.matches("</text>").count()
    }

    #[test]
    fn line_chart_renders_all_series() {
        let mut c = LineChart::new("t<&>", "x", "y");
        c.series("a", vec![(0.0, 1.0), (1.0, 2.0)]);
        c.series("b", vec![(0.0, 2.0), (1.0, 1.0)]);
        let svg = c.render_svg();
        assert!(balanced(&svg));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 4);
        assert!(svg.contains("t&lt;&amp;&gt;"), "title is escaped");
    }

    #[test]
    fn line_chart_skips_non_finite_points() {
        let mut c = LineChart::new("t", "x", "y");
        c.series("a", vec![(0.0, f64::INFINITY), (1.0, 2.0)]);
        let svg = c.render_svg();
        assert_eq!(svg.matches("<circle").count(), 1);
    }

    #[test]
    fn grouped_bars_render_one_rect_per_cell() {
        let mut c = GroupedBars::new("e", vec!["w1".into(), "w2".into()]);
        c.series("m1", vec![1.0, 2.0]);
        c.series("m2", vec![2.0, 1.0]);
        let svg = c.render_svg();
        assert!(balanced(&svg));
        // 1 background + 4 bars + 2 legend swatches.
        assert_eq!(svg.matches("<rect").count(), 7);
    }

    #[test]
    #[should_panic(expected = "one value per group")]
    fn grouped_bars_length_mismatch_panics() {
        let mut c = GroupedBars::new("e", vec!["w1".into()]);
        c.series("m1", vec![1.0, 2.0]);
    }
}
