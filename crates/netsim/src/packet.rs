//! Packet descriptors: what traffic models inject and receive.

use crate::flit::{Cycle, Flit, PacketId, VirtualNetwork};
use crate::geom::NodeId;

pub use crate::flit::PacketKind;

/// A packet as seen by traffic models and network interfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketDescriptor {
    /// Unique id (assigned by the network at enqueue time).
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Virtual network to travel on.
    pub vnet: VirtualNetwork,
    /// Length in flits (>= 1).
    pub len: u16,
    /// Cycle the packet was enqueued for injection.
    pub created_at: Cycle,
    /// Semantic class.
    pub kind: PacketKind,
    /// Opaque traffic-model correlation tag (e.g. transaction id).
    pub tag: u64,
}

impl PacketDescriptor {
    /// Materializes flit `seq` of this packet, stamped with the cycle it
    /// enters the network.
    ///
    /// # Panics
    ///
    /// Panics if `seq >= self.len`.
    pub fn flit(&self, seq: u16, injected_at: Cycle) -> Flit {
        assert!(
            seq < self.len,
            "flit seq {seq} out of range 0..{}",
            self.len
        );
        Flit {
            packet: self.id,
            seq,
            len: self.len,
            src: self.src,
            dest: self.dest,
            vnet: self.vnet,
            vc: None,
            created_at: self.created_at,
            injected_at,
            hops: 0,
            deflections: 0,
            kind: self.kind,
            tag: self.tag,
            checksum: crate::flit::checksum(self.id, seq, self.src, self.dest, self.tag),
        }
    }
}

/// A packet request handed to the network for injection; the network assigns
/// the id and creation timestamp, producing a [`PacketDescriptor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketInput {
    /// Destination node.
    pub dest: NodeId,
    /// Virtual network.
    pub vnet: VirtualNetwork,
    /// Length in flits (>= 1).
    pub len: u16,
    /// Semantic class.
    pub kind: PacketKind,
    /// Opaque traffic-model tag.
    pub tag: u64,
}

/// A fully reassembled packet together with its delivery timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveredPacket {
    /// The packet.
    pub descriptor: PacketDescriptor,
    /// Cycle the first flit entered the network.
    pub injected_at: Cycle,
    /// Cycle the final flit was delivered.
    pub delivered_at: Cycle,
    /// Total hops summed over the packet's flits.
    pub total_hops: u32,
    /// Total deflections summed over the packet's flits.
    pub total_deflections: u32,
}

impl DeliveredPacket {
    /// Network latency: first flit injection to last flit delivery.
    pub fn network_latency(&self) -> Cycle {
        self.delivered_at.saturating_sub(self.injected_at)
    }

    /// Total latency including source queueing delay.
    pub fn total_latency(&self) -> Cycle {
        self.delivered_at.saturating_sub(self.descriptor.created_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn descriptor() -> PacketDescriptor {
        PacketDescriptor {
            id: PacketId(3),
            src: NodeId::new(0),
            dest: NodeId::new(5),
            vnet: VirtualNetwork(2),
            len: 4,
            created_at: 10,
            kind: PacketKind::Response,
            tag: 99,
        }
    }

    #[test]
    fn flit_materialization_carries_metadata() {
        let d = descriptor();
        let f = d.flit(2, 15);
        assert_eq!(f.packet, d.id);
        assert_eq!(f.seq, 2);
        assert_eq!(f.len, 4);
        assert_eq!(f.dest, d.dest);
        assert_eq!(f.created_at, 10);
        assert_eq!(f.injected_at, 15);
        assert_eq!(f.tag, 99);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flit_seq_bounds_checked() {
        descriptor().flit(4, 0);
    }

    #[test]
    fn delivered_latencies() {
        let d = DeliveredPacket {
            descriptor: descriptor(),
            injected_at: 12,
            delivered_at: 30,
            total_hops: 9,
            total_deflections: 1,
        };
        assert_eq!(d.network_latency(), 18);
        assert_eq!(d.total_latency(), 20);
    }
}
