//! Minimal self-contained micro-benchmark harness.
//!
//! Replaces the Criterion dependency so the workspace builds with no
//! network access: each `[[bench]]` target with `harness = false` is a
//! plain binary that calls [`Group::bench`] per case and prints a
//! nanoseconds-per-iteration table.
//!
//! Methodology: warm up for a fixed wall-clock budget to size a batch,
//! then time several batches and report the fastest (the least-perturbed
//! sample — the usual estimator for tight kernels, where noise is strictly
//! additive).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Wall-clock budget for sizing one measurement batch.
const WARMUP: Duration = Duration::from_millis(20);
/// Timed batches per benchmark; the fastest is reported.
const SAMPLES: u32 = 7;

/// A named collection of benchmark cases sharing one report table.
pub struct Group {
    name: &'static str,
    quiet: bool,
}

/// Starts a benchmark group, printing its header.
pub fn group(name: &'static str) -> Group {
    println!("\n== {name} ==");
    Group { name, quiet: false }
}

/// Starts a benchmark group that prints nothing: measurements are only
/// returned to the caller (for `--json-only` artifact regeneration).
pub fn group_quiet(name: &'static str) -> Group {
    Group { name, quiet: true }
}

impl Group {
    /// Runs one benchmark case and prints its result.
    ///
    /// `f` is the unit of work; its return value is passed through
    /// [`black_box`] so the optimizer cannot delete it.
    pub fn bench<R>(&mut self, label: &str, mut f: impl FnMut() -> R) {
        // Warm up and size the batch.
        let start = Instant::now();
        let mut batch: u64 = 0;
        while start.elapsed() < WARMUP {
            black_box(f());
            batch += 1;
        }
        let batch = batch.max(1);

        let mut best = f64::INFINITY;
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            best = best.min(ns);
        }
        if !self.quiet {
            println!("{}/{label:<36} {best:>12.1} ns/iter", self.name);
        }
    }

    /// Times `body` over `repeats` fresh states from `setup` and returns
    /// the best nanoseconds per unit of work (`body` performs `units`
    /// units — e.g. simulated cycles — per invocation).
    ///
    /// Unlike [`Group::bench`], every repeat starts from a fresh `setup()`
    /// state, so stateful workloads (a simulation that accumulates
    /// backlog) do identical work in every sample and the fastest repeat
    /// is a meaningful minimum-noise estimate.
    pub fn bench_units<T>(
        &mut self,
        label: &str,
        units: u64,
        repeats: u32,
        mut setup: impl FnMut() -> T,
        mut body: impl FnMut(&mut T),
    ) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..repeats.max(1) {
            let mut state = setup();
            let t = Instant::now();
            body(&mut state);
            let ns = t.elapsed().as_nanos() as f64 / units.max(1) as f64;
            black_box(&mut state);
            best = best.min(ns);
        }
        if !self.quiet {
            println!("{}/{label:<36} {best:>12.1} ns/unit", self.name);
        }
        best
    }

    /// Ends the group (kept for symmetry with the old Criterion API).
    pub fn finish(self) {}
}
