//! The parallel engine must *pay or get out of the way*.
//!
//! Two economic guarantees around the engine, complementing the
//! byte-identity suite in `parallel_equivalence.rs`:
//!
//! * **Low-load regression (the old 2-thread pathology):** with the
//!   adaptive serial/parallel gate on (the default), an AFC 8×8 run at
//!   0.05 offered load with 2 threads must cost at most 1.2× the serial
//!   wall-clock. Before the gate existed this was a 4× regression
//!   (3.8 → 15.9 µs/cycle) because barrier overhead dwarfed the tiny
//!   per-cycle work.
//! * **Large-mesh memory leanness:** per-node heap must not grow with
//!   mesh size — the audit that makes 128×128 sweeps affordable.

use afc_bench::MechanismId;
use afc_netsim::config::NetworkConfig;
use afc_netsim::network::Network;
use afc_netsim::sim::Simulation;
use afc_traffic::openloop::{OpenLoopTraffic, PacketMix, RateSpec};
use afc_traffic::synthetic::Pattern;

fn make_sim(id: MechanismId, side: u16, rate: f64, threads: usize) -> Simulation<OpenLoopTraffic> {
    let cfg = NetworkConfig {
        width: side,
        height: side,
        ..NetworkConfig::paper_8x8()
    };
    let network = Network::new(cfg, id.mechanism().factory.as_ref(), 0xFEED).expect("valid config");
    let traffic = OpenLoopTraffic::new(
        RateSpec::Uniform(rate),
        Pattern::UniformRandom,
        PacketMix::paper(),
        0xFEED,
    );
    let mut sim = Simulation::new(network, traffic);
    sim.network.set_sim_threads(threads);
    sim
}

/// AFC low_0.05 with 2 threads and the adaptive gate on must stay within
/// 1.2× of serial cost. Wall-clock tests are noisy, so the ratio is the
/// *minimum* over a few attempts — the gate's steady state (8 probe cycles
/// per ~270-cycle commit window) leaves ample headroom below 1.2×, so a
/// persistent failure means the gate stopped falling back.
#[test]
fn adaptive_gate_caps_low_load_two_thread_cost() {
    const CYCLES: u64 = 4_000;
    const ATTEMPTS: usize = 3;
    let mut best_ratio = f64::INFINITY;
    for attempt in 0..ATTEMPTS {
        let mut serial = make_sim(MechanismId::Afc, 8, 0.05, 1);
        let t0 = std::time::Instant::now();
        serial.run(CYCLES);
        let serial_ns = t0.elapsed().as_nanos() as f64;

        let mut gated = make_sim(MechanismId::Afc, 8, 0.05, 2);
        // CI sets AFC_SIM_THREADS for some jobs, which pins the gate off
        // to keep parallel coverage; this test is *about* the gate.
        gated.network.set_parallel_adaptive(true);
        let t1 = std::time::Instant::now();
        gated.run(CYCLES);
        let gated_ns = t1.elapsed().as_nanos() as f64;

        // The gate must have actually probed the parallel path (otherwise
        // this is a serial-vs-serial tautology)...
        assert!(
            gated.network.parallel_cycles() > 0,
            "attempt {attempt}: adaptive gate never probed the parallel path"
        );
        // ...without committing to it wholesale at a load this light on
        // any host where it loses. (On hosts where parallel genuinely
        // wins at low load, the cost cap below still holds trivially.)
        best_ratio = best_ratio.min(gated_ns / serial_ns);
        if best_ratio <= 1.2 {
            return;
        }
    }
    panic!(
        "AFC low_0.05 x2 cost {best_ratio:.2}x serial over {ATTEMPTS} attempts \
         (regression bound: 1.2x) — the adaptive gate is not falling back"
    );
}

/// The BENCH_parallel 8×8 rows showed 0.33–0.60× "speedup" at 4–8
/// threads: with a thread budget far beyond what 64 routers can feed,
/// coordination costs swamp the work. The multi-candidate gate
/// (candidates {1, 2, budget}) must shed the excess — an 8×8 run granted
/// 4 or 8 threads must stay within 1.2× of serial wall-clock, same bound
/// and same min-over-attempts noise discipline as the 2-thread test.
#[test]
fn adaptive_gate_caps_small_mesh_over_threading() {
    const CYCLES: u64 = 4_000;
    const ATTEMPTS: usize = 3;
    for budget in [4usize, 8] {
        let mut best_ratio = f64::INFINITY;
        for attempt in 0..ATTEMPTS {
            let mut serial = make_sim(MechanismId::Afc, 8, 0.05, 1);
            let t0 = std::time::Instant::now();
            serial.run(CYCLES);
            let serial_ns = t0.elapsed().as_nanos() as f64;

            let mut gated = make_sim(MechanismId::Afc, 8, 0.05, budget);
            gated.network.set_parallel_adaptive(true);
            let t1 = std::time::Instant::now();
            gated.run(CYCLES);
            let gated_ns = t1.elapsed().as_nanos() as f64;

            assert!(
                gated.network.parallel_cycles() > 0,
                "budget {budget}, attempt {attempt}: adaptive gate never \
                 probed the parallel path"
            );
            best_ratio = best_ratio.min(gated_ns / serial_ns);
            if best_ratio <= 1.2 {
                break;
            }
        }
        assert!(
            best_ratio <= 1.2,
            "AFC 8x8 low_0.05 with a {budget}-thread budget cost \
             {best_ratio:.2}x serial over {ATTEMPTS} attempts (bound: 1.2x) \
             — the gate is not shedding excess threads"
        );
    }
}

/// Per-node heap at 128×128 must stay in the same ballpark as at 8×8:
/// router/NI/channel state is O(ports × VCs × local traffic), and the only
/// O(mesh) tables (flat indices, activity bitmasks, plan tables) are a few
/// dozen bytes per node. A 2× bound catches any reintroduced O(mesh)
/// per-router table (a single such Vec<u64> would add 128 KiB/node).
#[test]
fn per_node_memory_is_flat_from_8x8_to_128x128() {
    let mut small = make_sim(MechanismId::Afc, 8, 0.02, 4);
    small.network.set_parallel_adaptive(false);
    small.run(50);
    let small_fp = small.network.memory_footprint();

    let mut large = make_sim(MechanismId::Afc, 128, 0.02, 4);
    large.network.set_parallel_adaptive(false);
    large.run(50);
    let large_fp = large.network.memory_footprint();

    assert!(small_fp.total_bytes() > 0 && large_fp.total_bytes() > 0);
    assert_eq!(small_fp.nodes, 64);
    assert_eq!(large_fp.nodes, 16_384);
    // High-water tracking: the sample above must be recorded.
    assert_eq!(large.network.memory_high_water(), large_fp.total_bytes());

    let small_per_node = small_fp.per_node_bytes();
    let large_per_node = large_fp.per_node_bytes();
    assert!(
        large_per_node <= small_per_node * 2,
        "per-node heap exploded with mesh size: 8x8 = {small_per_node} B/node, \
         128x128 = {large_per_node} B/node \
         (128x128 breakdown: routers {} nis {} channels {} engine {} other {})",
        large_fp.router_bytes,
        large_fp.ni_bytes,
        large_fp.channel_bytes,
        large_fp.engine_bytes,
        large_fp.other_bytes,
    );

    // The engine's plan tables are the one deliberately-O(mesh) piece:
    // ~4 channels per node, each costing ~27 bytes of flat pull-list /
    // kill-schedule tables (~110 B/node total). Bound them at 128 B/node
    // so any accidental O(mesh) *per-router* table still trips instantly.
    assert!(
        large_fp.engine_bytes <= 128 * large_fp.nodes,
        "engine plan tables are no longer compact: {} bytes for {} nodes",
        large_fp.engine_bytes,
        large_fp.nodes
    );
}
