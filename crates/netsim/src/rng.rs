//! Deterministic pseudo-random number generation for the simulator.
//!
//! A self-contained xoshiro256** generator seeded through SplitMix64. Every
//! source of randomness in a simulation (deflection-ranking, traffic
//! destinations, arbitration tie-breaks) draws from a [`SimRng`] so that runs
//! are exactly reproducible from a seed — a property asserted by the
//! integration test suite.

/// Deterministic PRNG (xoshiro256**).
///
/// # Examples
///
/// ```
/// use afc_netsim::rng::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> SimRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Returns the raw xoshiro256** state words, for snapshotting.
    ///
    /// Together with [`SimRng::from_state`] this gives an exact round trip:
    /// a restored generator produces the identical output stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Reconstructs a generator from state words captured by
    /// [`SimRng::state`].
    pub fn from_state(s: [u64; 4]) -> SimRng {
        SimRng { s }
    }

    /// Derives an independent stream for a sub-component.
    ///
    /// Forked streams with distinct `stream` values are statistically
    /// independent of each other and of the parent.
    pub fn fork(&self, stream: u64) -> SimRng {
        let mut sm = self.s[0] ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..bound` (Lemire's method).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform index in `0..len` as `usize`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn gen_index(&mut self, len: usize) -> usize {
        self.gen_range(len as u64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53-bit uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Geometric-ish exponential sample with the given mean (for think
    /// times). Returns at least 1.
    pub fn gen_exp(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 1;
        }
        let u = self.gen_f64().max(f64::MIN_POSITIVE);
        let v = -mean * u.ln();
        v.max(1.0).min(u64::MAX as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn forked_streams_are_deterministic_and_distinct() {
        let root = SimRng::seed_from(9);
        let mut f1 = root.fork(1);
        let mut f1b = root.fork(1);
        let mut f2 = root.fork(2);
        assert_eq!(f1.next_u64(), f1b.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = SimRng::seed_from(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SimRng::seed_from(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let trues = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&trues), "got {trues}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(5);
        let mut v: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn gen_exp_mean_is_close() {
        let mut rng = SimRng::seed_from(6);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| rng.gen_exp(50.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((40.0..60.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(8);
        for _ in 0..1000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
