//! Section V-A "Mode duty cycle and spatial variation": fraction of
//! router-cycles AFC spends in each mode for every workload, plus mode
//! switch counts.

use afc_bench::experiments::closed_loop_matrix;
use afc_bench::mechanisms::Mechanism;
use afc_bench::report::{percent, Table};
use afc_core::AfcFactory;
use afc_netsim::config::NetworkConfig;
use afc_traffic::workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    afc_bench::sweep::parse_threads_arg_or_exit(&args);
    let quick = args.iter().any(|a| a == "--quick");
    let (warmup, measure) = if quick { (100, 400) } else { (500, 2_000) };
    let mechs = vec![Mechanism {
        label: "afc",
        factory: Box::new(AfcFactory::paper()),
    }];
    let rows = closed_loop_matrix(
        &mechs,
        &workloads::all(),
        &NetworkConfig::paper_3x3(),
        warmup,
        measure,
        50_000_000,
        1,
    );
    let mut t = Table::new(vec![
        "workload",
        "backpressured",
        "switches fwd",
        "switches rev",
        "gossip",
    ]);
    for r in &rows {
        t.row(vec![
            r.workload.to_string(),
            percent(r.backpressured_fraction),
            r.mode_switches.0.to_string(),
            r.mode_switches.1.to_string(),
            r.mode_switches.2.to_string(),
        ]);
    }
    println!("AFC mode duty cycle (fraction of router-cycles in backpressured mode)\n");
    println!("{}", t.render());
    println!(
        "Paper reference: water/barnes ~99% backpressureless; specjbb/apache >99%\n\
         backpressured; ocean 7% backpressured; oltp 5% backpressureless."
    );
    let timing = afc_bench::sweep::write_timing_report("duty_cycle").expect("writable results dir");
    println!("(timing: {})", timing.display());
}
