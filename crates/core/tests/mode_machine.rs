//! Property tests for the AFC router's mode machine: under arbitrary
//! sequences of flit arrivals, credits, and control signals, the router
//! never loses a flit, never exceeds buffer capacity, and its transition
//! timing stays within bounds.
//!
//! Formerly driven by `proptest`; rewritten as deterministic seeded sweeps
//! over [`SimRng`]-generated event scripts so the suite builds offline.

use afc_core::{AfcConfig, AfcMode, AfcRouter};
use afc_netsim::channel::{ControlSignal, Credit};
use afc_netsim::config::NetworkConfig;
use afc_netsim::flit::{Flit, PacketId, VirtualNetwork};
use afc_netsim::geom::{Coord, Direction, NodeId, PortId};
use afc_netsim::rng::SimRng;
use afc_netsim::router::{Router, RouterMode, RouterOutputs};

/// One scripted stimulus for a cycle.
#[derive(Debug, Clone)]
enum Event {
    /// Deliver a flit on a port (port index 0..4, vnet 0..3, dest 0..9).
    Flit { port: usize, vnet: u8, dest: usize },
    /// Deliver a vnet credit on an output port.
    Credit { port: usize, vnet: u8 },
    /// Deliver a control signal.
    Control { port: usize, start: bool },
    /// Quiet cycle.
    Idle,
}

fn random_event(rng: &mut SimRng) -> Event {
    match rng.gen_index(4) {
        0 => Event::Flit {
            port: rng.gen_index(4),
            vnet: rng.gen_index(3) as u8,
            dest: rng.gen_index(9),
        },
        1 => Event::Credit {
            port: rng.gen_index(4),
            vnet: rng.gen_index(3) as u8,
        },
        2 => Event::Control {
            port: rng.gen_index(4),
            start: rng.gen_bool(0.5),
        },
        _ => Event::Idle,
    }
}

#[test]
fn arbitrary_event_sequences_preserve_flits() {
    for case in 0..48u64 {
        let mut p = SimRng::seed_from(0x3A0DE + case);
        let len = 1 + p.gen_index(399);
        let events: Vec<Event> = (0..len).map(|_| random_event(&mut p)).collect();
        let seed = p.gen_range(1_000);

        let net = NetworkConfig::paper_3x3();
        let mesh = net.mesh().unwrap();
        let node = mesh.node_at(Coord::new(1, 1)).unwrap(); // center: all ports
        let mut r = AfcRouter::new(node, &mesh, &net, AfcConfig::paper());
        let mut rng = SimRng::seed_from(seed);
        let mut out = RouterOutputs::new();
        let mut inbound: u64 = 0;
        let mut outbound: u64 = 0;
        let mut packet_id = 0u64;

        for (now, ev) in events.iter().enumerate() {
            let now = now as u64;
            match ev {
                Event::Flit { port, vnet, dest } => {
                    let dir = Direction::ALL[*port];
                    // Respect the router's admission discipline exactly as
                    // the engine does: in buffered states an arrival needs
                    // a free lazy VC (upstream credits guarantee this in a
                    // real network; the script just checks occupancy).
                    let mut flit =
                        Flit::test_flit(PacketId(packet_id), NodeId::new(0), NodeId::new(*dest));
                    packet_id += 1;
                    flit.vnet = VirtualNetwork(*vnet);
                    // Only deliver if the router is in a state where a
                    // correct upstream would have sent it. We approximate:
                    // always allowed while deflecting; in buffered states
                    // require spare capacity in the vnet at that port.
                    let occ_before = r.occupancy();
                    let buffered_mode = matches!(r.mode(), RouterMode::Backpressured);
                    if buffered_mode {
                        // Probe capacity through the public occupancy/
                        // capacity invariants: 8/8/16 lazy VCs per port.
                        // We simply skip delivery when a prior fill made it
                        // risky; precise per-vnet occupancy is not public.
                        if occ_before >= 28 {
                            continue;
                        }
                    } else if occ_before >= 4 {
                        // At most one latched flit per port per cycle.
                        continue;
                    }
                    r.receive_flit(PortId::Net(dir), flit, now);
                    inbound += 1;
                }
                Event::Credit { port, vnet } => {
                    r.receive_credit(
                        PortId::Net(Direction::ALL[*port]),
                        Credit::Vnet(VirtualNetwork(*vnet)),
                        now,
                    );
                }
                Event::Control { port, start } => {
                    let sig = if *start {
                        ControlSignal::StartCreditTracking
                    } else {
                        ControlSignal::StopCreditTracking
                    };
                    r.receive_control(PortId::Net(Direction::ALL[*port]), sig, now);
                }
                Event::Idle => {}
            }
            out.clear();
            r.step(now, &mut rng, &mut out);
            outbound += out.flits_sent() as u64 + out.ejected.len() as u64;
        }

        // Drain with generous credits on all ports.
        let start = events.len() as u64;
        for now in start..start + 2_000 {
            for d in Direction::ALL {
                for v in 0..3u8 {
                    r.receive_credit(PortId::Net(d), Credit::Vnet(VirtualNetwork(v)), now);
                }
            }
            out.clear();
            r.step(now, &mut rng, &mut out);
            outbound += out.flits_sent() as u64 + out.ejected.len() as u64;
            if r.occupancy() == 0 {
                break;
            }
        }
        assert_eq!(
            r.occupancy(),
            0,
            "router must drain (case {case} seed {seed})"
        );
        assert_eq!(
            inbound, outbound,
            "no flit may vanish or duplicate (case {case} seed {seed})"
        );
    }
}

/// Transition windows always last exactly 2L + 2 cycles and the mode
/// sequence is sane (no Backpressureless -> Backpressured jump without
/// a transition).
#[test]
fn transitions_have_fixed_length() {
    for case in 0..20u64 {
        let mut p = SimRng::seed_from(0x7124 + case);
        let seed = p.gen_range(500);

        let net = NetworkConfig::paper_3x3();
        let mesh = net.mesh().unwrap();
        let node = mesh.node_at(Coord::new(1, 1)).unwrap();
        let mut r = AfcRouter::new(
            node,
            &mesh,
            &net,
            AfcConfig {
                reverse_dwell: 0,
                ..AfcConfig::paper()
            },
        );
        let mut rng = SimRng::seed_from(seed);
        let mut stim = SimRng::seed_from(seed ^ 0xABCD);
        let mut out = RouterOutputs::new();
        let mut last = r.afc_mode();
        let mut transition_started = None;
        for now in 0..4_000u64 {
            // Random bursty arrivals drive mode churn.
            let burst = (now / 250) % 2 == 0;
            let prob = if burst { 0.9 } else { 0.02 };
            for d in Direction::ALL {
                if stim.gen_bool(prob) && r.occupancy() < 3 {
                    let mut f = Flit::test_flit(
                        PacketId(now * 10 + d.index() as u64),
                        NodeId::new(0),
                        NodeId::new(stim.gen_index(9)),
                    );
                    f.vnet = VirtualNetwork(stim.gen_index(3) as u8);
                    if matches!(r.mode(), RouterMode::Backpressured) {
                        continue; // keep the script simple: no buffered fills
                    }
                    r.receive_flit(PortId::Net(d), f, now);
                }
            }
            out.clear();
            r.step(now, &mut rng, &mut out);
            let mode = r.afc_mode();
            match (last, mode) {
                (AfcMode::Backpressureless, AfcMode::Backpressured) => {
                    panic!("must pass through the transition state (case {case})");
                }
                (AfcMode::Backpressureless, AfcMode::SwitchingForward { since, complete_at }) => {
                    assert_eq!(complete_at - since, 6); // 2L + 2 with L = 2
                    transition_started = Some(since);
                }
                (AfcMode::SwitchingForward { .. }, AfcMode::Backpressured) => {
                    let started = transition_started.expect("saw the start");
                    assert!(now >= started + 6);
                    assert!(now <= started + 7);
                }
                (AfcMode::SwitchingForward { .. }, AfcMode::Backpressureless) => {
                    panic!("transitions never abort (case {case})");
                }
                _ => {}
            }
            last = mode;
        }
    }
}
