//! # afc-core — the Adaptive Flow Control router
//!
//! This crate implements the primary contribution of *Adaptive Flow Control
//! for Robust Performance and Energy* (Jafri, Hong, Thottethodi, Vijaykumar
//! — MICRO 2010): a router that dynamically adapts between **backpressured**
//! (credit-based, buffered) and **backpressureless** (deflection, bufferless)
//! flow control, approaching the better of the two across the whole load
//! spectrum.
//!
//! The three novel mechanisms of the paper:
//!
//! 1. **Local contention thresholds** ([`contention`]) — each router
//!    measures local traffic intensity (flits traversing per cycle, averaged
//!    over a 4-cycle window, smoothed by an EWMA with weight 0.99) and
//!    compares it against design-time thresholds scaled by router class
//!    (corner/edge/center). Crossing the high threshold triggers a forward
//!    switch to backpressured mode; falling below the (lower) reverse
//!    threshold with empty buffers switches back. The two thresholds form a
//!    hysteresis band.
//! 2. **Gossip-induced mode switch** ([`router`]) — a backpressureless
//!    router tracks the credits of neighbors that have switched to
//!    backpressured mode; when a neighbor's free buffering falls to the
//!    threshold `X`, the router force-switches forward even without local
//!    contention, guaranteeing that backpressured buffers are never
//!    overwritten.
//! 3. **Lazy VC allocation** ([`router`]) — because AFC routes flit-by-flit
//!    even in backpressured mode, VC allocation degenerates: the input
//!    buffer is organized as `K` one-flit VCs per port, credits are tracked
//!    per *virtual network*, and the downstream router assigns the VC at
//!    buffer-write time. This removes the VC-allocation pipeline stage and
//!    halves total buffering (32 vs. 64 flits per port in the paper's
//!    configuration).
//!
//! ## Timing note
//!
//! The `afc-netsim` channel model charges `L + 2` cycles between a switch
//! arbitration and the downstream arbitration eligibility (switch traversal,
//! then `L` wire cycles, with the buffer write overlapped). The paper's `2L`-cycle
//! mode-transition window and `X = 2L` gossip threshold therefore become
//! `2L + 2` here; the overflow-freedom argument of Section III-D carries
//! over unchanged with the widened constants.
//!
//! ## Example
//!
//! ```
//! use afc_core::{AfcConfig, AfcFactory};
//! use afc_netsim::prelude::*;
//!
//! let net_cfg = NetworkConfig::paper_3x3();
//! let factory = AfcFactory::new(AfcConfig::paper());
//! let network = Network::new(net_cfg, &factory, 42)?;
//! assert_eq!(network.mechanism(), "afc");
//! assert_eq!(network.buffer_flits_per_port(), 32); // half the baseline's 64
//! # Ok::<(), afc_netsim::error::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod contention;
pub mod router;

pub use config::{AfcConfig, ClassThresholds};
pub use contention::ContentionMonitor;
pub use router::{AfcFactory, AfcMode, AfcRouter, AfcSnapshot};
