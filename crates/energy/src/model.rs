//! Converting activity counters into energy.

use crate::params::EnergyParams;
use afc_netsim::counters::ActivityCounters;
use afc_netsim::network::Network;

/// Energy of one run, split by component (all values in picojoules).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Buffer read/write dynamic energy.
    pub buffer_dynamic: f64,
    /// Buffer leakage (after power gating).
    pub buffer_static: f64,
    /// Pipeline-latch writes (backpressureless input path).
    pub latch_dynamic: f64,
    /// Link traversal energy, including credit and control wires.
    pub link: f64,
    /// Crossbar traversal energy.
    pub crossbar: f64,
    /// Arbitration energy.
    pub arbitration: f64,
    /// Non-buffer router leakage.
    pub router_static: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.buffer_dynamic
            + self.buffer_static
            + self.latch_dynamic
            + self.link
            + self.crossbar
            + self.arbitration
            + self.router_static
    }

    /// Total buffer energy (dynamic + static) — the "Buffer Energy" series
    /// of Figure 3.
    pub fn buffer(&self) -> f64 {
        self.buffer_dynamic + self.buffer_static
    }

    /// "Rest of Router Energy" in Figure 3: everything that is neither
    /// buffer nor link (crossbar, arbiters, latches, non-buffer leakage).
    pub fn rest_of_router(&self) -> f64 {
        self.latch_dynamic + self.crossbar + self.arbitration + self.router_static
    }

    /// Ratio of this breakdown's total to another's.
    pub fn relative_to(&self, baseline: &EnergyBreakdown) -> f64 {
        self.total() / baseline.total()
    }
}

/// Mechanism-specific inputs to pricing that are not in the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MechanismProfile {
    /// Flit width in bits (payload + control), e.g. 41/45/49.
    pub flit_width_bits: u32,
    /// Instantiated buffer capacity per input port, in flits.
    pub buffer_flits_per_port: usize,
    /// Total buffered input ports across the network (network ports with a
    /// neighbor plus one local port per node).
    pub buffered_input_ports: usize,
    /// Number of routers.
    pub routers: usize,
    /// Elide all buffer read/write dynamic energy — the "Backpressured
    /// ideal-bypass" lower bound of Figure 2(b).
    pub ideal_buffer_bypass: bool,
}

impl MechanismProfile {
    /// Derives the profile from a built network.
    pub fn of(net: &Network) -> MechanismProfile {
        let mesh = net.mesh();
        let buffered_input_ports = mesh.nodes().map(|n| mesh.degree(n) + 1).sum();
        MechanismProfile {
            flit_width_bits: net.flit_width_bits(),
            buffer_flits_per_port: net.buffer_flits_per_port(),
            buffered_input_ports,
            routers: mesh.node_count(),
            ideal_buffer_bypass: net.mechanism() == "backpressured-ideal-bypass",
        }
    }

    /// Total instantiated buffer bits.
    pub fn buffer_bits(&self) -> f64 {
        self.buffered_input_ports as f64
            * self.buffer_flits_per_port as f64
            * self.flit_width_bits as f64
    }
}

/// The energy model: prices activity counters under a parameter set.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid (negative or NaN entries).
    pub fn new(params: EnergyParams) -> EnergyModel {
        assert!(params.is_valid(), "energy parameters must be valid");
        EnergyModel { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Prices aggregated counters for a mechanism.
    ///
    /// `counters.cycles` is the sum of per-router cycles; leakage uses
    /// `cycles / routers` as the elapsed time and `cycles_buffers_gated`
    /// for the gated fraction.
    pub fn price(
        &self,
        counters: &ActivityCounters,
        profile: &MechanismProfile,
    ) -> EnergyBreakdown {
        let p = &self.params;
        let w = profile.flit_width_bits as f64;
        let buffer_dynamic = if profile.ideal_buffer_bypass {
            0.0
        } else {
            // SRAM access energy grows with array size: smaller buffers
            // (AFC's 32 vs. the baseline's 64 flits per port) are cheaper
            // to read and write.
            let size_scale = if profile.buffer_flits_per_port == 0 {
                0.0
            } else {
                (profile.buffer_flits_per_port as f64 / p.buffer_access_reference_flits)
                    .powf(p.buffer_access_size_exponent)
            };
            (counters.buffer_writes as f64 * p.buffer_write_per_bit
                + counters.buffer_reads as f64 * p.buffer_read_per_bit)
                * w
                * size_scale
        };
        let latch_dynamic = counters.latch_writes as f64 * p.latch_write_per_bit * w;
        let crossbar = counters.crossbar_traversals as f64 * p.crossbar_per_bit * w;
        let link = counters.link_traversals as f64 * p.link_per_bit * w
            + counters.credits_sent as f64 * p.credit
            + counters.control_sends as f64 * p.control;
        let arbitration = counters.arbitrations as f64 * p.arbitration;

        let elapsed = if profile.routers == 0 {
            0.0
        } else {
            counters.cycles as f64 / profile.routers as f64
        };
        let gated_fraction = counters.gated_fraction();
        let leak_scale = (1.0 - gated_fraction) + gated_fraction * (1.0 - p.gating_effectiveness);
        let buffer_static =
            profile.buffer_bits() * p.buffer_leak_per_bit_cycle * elapsed * leak_scale;
        let router_static = profile.routers as f64 * p.router_leak_per_cycle * elapsed;

        EnergyBreakdown {
            buffer_dynamic,
            buffer_static,
            latch_dynamic,
            link,
            crossbar,
            arbitration,
            router_static,
        }
    }

    /// Convenience: prices a whole network run (its aggregated counters
    /// under its own mechanism profile).
    pub fn price_network(&self, net: &Network) -> EnergyBreakdown {
        self.price(&net.total_counters(), &MechanismProfile::of(net))
    }

    /// Prices each router separately (e.g. to render spatial energy maps).
    /// Per-router profiles account for each node's actual port count, so
    /// the per-router totals sum to [`EnergyModel::price_network`]'s total.
    pub fn price_per_router(&self, net: &Network) -> Vec<EnergyBreakdown> {
        let mesh = net.mesh();
        let base = MechanismProfile::of(net);
        mesh.nodes()
            .map(|node| {
                let profile = MechanismProfile {
                    buffered_input_ports: mesh.degree(node) + 1,
                    routers: 1,
                    ..base
                };
                self.price(&net.router_counters(node), &profile)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> MechanismProfile {
        MechanismProfile {
            flit_width_bits: 41,
            buffer_flits_per_port: 64,
            buffered_input_ports: 33,
            routers: 9,
            ideal_buffer_bypass: false,
        }
    }

    #[test]
    fn zero_activity_prices_only_leakage() {
        let model = EnergyModel::new(EnergyParams::micro2010_70nm());
        let counters = ActivityCounters {
            cycles: 9_000, // 1000 cycles on 9 routers
            ..ActivityCounters::new()
        };
        let e = model.price(&counters, &profile());
        assert_eq!(e.buffer_dynamic, 0.0);
        assert_eq!(e.link, 0.0);
        assert!(e.buffer_static > 0.0);
        assert!(e.router_static > 0.0);
        assert!((e.total() - e.buffer_static - e.router_static).abs() < 1e-9);
    }

    #[test]
    fn gating_removes_90_percent_of_buffer_leakage() {
        let model = EnergyModel::new(EnergyParams::micro2010_70nm());
        let active = ActivityCounters {
            cycles: 9_000,
            ..ActivityCounters::new()
        };
        let gated = ActivityCounters {
            cycles: 9_000,
            cycles_buffers_gated: 9_000,
            ..ActivityCounters::new()
        };
        let e_active = model.price(&active, &profile());
        let e_gated = model.price(&gated, &profile());
        let ratio = e_gated.buffer_static / e_active.buffer_static;
        assert!((ratio - 0.10).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn ideal_bypass_zeroes_buffer_dynamic_only() {
        let model = EnergyModel::new(EnergyParams::micro2010_70nm());
        let counters = ActivityCounters {
            cycles: 9_000,
            buffer_writes: 1000,
            buffer_reads: 1000,
            link_traversals: 500,
            ..ActivityCounters::new()
        };
        let normal = model.price(&counters, &profile());
        let bypass = model.price(
            &counters,
            &MechanismProfile {
                ideal_buffer_bypass: true,
                ..profile()
            },
        );
        assert!(normal.buffer_dynamic > 0.0);
        assert_eq!(bypass.buffer_dynamic, 0.0);
        assert_eq!(bypass.buffer_static, normal.buffer_static);
        assert_eq!(bypass.link, normal.link);
    }

    #[test]
    fn wider_flits_cost_more() {
        let model = EnergyModel::new(EnergyParams::micro2010_70nm());
        let counters = ActivityCounters {
            cycles: 9_000,
            link_traversals: 1000,
            crossbar_traversals: 1000,
            ..ActivityCounters::new()
        };
        let narrow = model.price(&counters, &profile());
        let wide = model.price(
            &counters,
            &MechanismProfile {
                flit_width_bits: 49,
                ..profile()
            },
        );
        let expect = 49.0 / 41.0;
        assert!((wide.link / narrow.link - expect).abs() < 1e-9);
        assert!((wide.crossbar / narrow.crossbar - expect).abs() < 1e-9);
    }

    #[test]
    fn breakdown_groups_sum_to_total() {
        let model = EnergyModel::new(EnergyParams::micro2010_70nm());
        let counters = ActivityCounters {
            cycles: 9_000,
            buffer_writes: 10,
            buffer_reads: 10,
            latch_writes: 5,
            crossbar_traversals: 20,
            link_traversals: 15,
            arbitrations: 30,
            credits_sent: 10,
            control_sends: 2,
            ..ActivityCounters::new()
        };
        let e = model.price(&counters, &profile());
        let regrouped = e.buffer() + e.link + e.rest_of_router();
        assert!((regrouped - e.total()).abs() < 1e-9);
        assert!(e.relative_to(&e) - 1.0 < 1e-12);
    }

    #[test]
    fn per_router_totals_sum_to_network_total() {
        use afc_netsim::config::NetworkConfig;
        use afc_netsim::network::Network;
        use afc_routers::BackpressuredFactory;
        let mut net =
            Network::new(NetworkConfig::paper_3x3(), &BackpressuredFactory::new(), 5).unwrap();
        // Drive a little traffic so dynamic energy is nonzero.
        let mesh = net.mesh().clone();
        for i in 0..8usize {
            net.offer_packet(
                afc_netsim::geom::NodeId::new(i % 9),
                afc_netsim::packet::PacketInput {
                    dest: afc_netsim::geom::NodeId::new((i + 3) % 9),
                    vnet: afc_netsim::flit::VirtualNetwork(0),
                    len: 2,
                    kind: afc_netsim::packet::PacketKind::Synthetic,
                    tag: 0,
                },
            );
        }
        for _ in 0..100 {
            net.step();
            net.take_delivered();
        }
        let _ = mesh;
        let model = EnergyModel::new(EnergyParams::micro2010_70nm());
        let total = model.price_network(&net).total();
        let sum: f64 = model
            .price_per_router(&net)
            .iter()
            .map(EnergyBreakdown::total)
            .sum();
        assert!(total > 0.0);
        assert!(
            (sum - total).abs() / total < 1e-9,
            "per-router sum {sum} vs network total {total}"
        );
    }

    #[test]
    #[should_panic(expected = "must be valid")]
    fn invalid_params_rejected() {
        let mut p = EnergyParams::micro2010_70nm();
        p.credit = -0.1;
        let _ = EnergyModel::new(p);
    }
}
