//! Closed-loop heterogeneous consolidation (extension beyond the paper).
//!
//! The paper's Section V-B approximates a consolidated multicore — one
//! application per quadrant — with *open-loop* traffic. This experiment
//! runs the real thing closed-loop on an 8x8 mesh: quadrant 0 runs the
//! apache preset (high load), the other three run water (low load), with
//! full MSHR feedback. Reported per mechanism: each class's transaction
//! throughput, total network energy, and AFC's spatial mode split.

use afc_bench::mechanisms::fig2_mechanisms;
use afc_bench::report::{percent, ratio, Table};
use afc_energy::{EnergyModel, EnergyParams};
use afc_netsim::config::NetworkConfig;
use afc_netsim::network::Network;
use afc_netsim::sim::Simulation;
use afc_netsim::trace::render_mode_map;
use afc_traffic::closedloop::ClosedLoopTraffic;
use afc_traffic::synthetic::quadrant_of;
use afc_traffic::workloads;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup_cycles, measure_cycles) = if quick {
        (3_000, 10_000)
    } else {
        (8_000, 40_000)
    };
    let cfg = NetworkConfig::paper_8x8();
    let mesh = cfg.mesh().expect("valid mesh");
    let params: Vec<_> = mesh
        .nodes()
        .map(|n| {
            if quadrant_of(n, &mesh) == 0 {
                workloads::apache()
            } else {
                workloads::water()
            }
        })
        .collect();
    let hot_nodes: Vec<usize> = mesh
        .nodes()
        .filter(|n| quadrant_of(*n, &mesh) == 0)
        .map(|n| n.index())
        .collect();

    let model = EnergyModel::new(EnergyParams::micro2010_70nm());
    let mut results = Vec::new();
    for mech in fig2_mechanisms() {
        let network = Network::new(cfg.clone(), mech.factory.as_ref(), 1).expect("valid");
        let traffic = ClosedLoopTraffic::heterogeneous(params.clone(), 1);
        let mut sim = Simulation::new(network, traffic);
        sim.run(warmup_cycles);
        sim.network.reset_metrics();
        sim.traffic.reset_completed_by_node();
        sim.run(measure_cycles);

        let by_node = sim.traffic.completed_by_node();
        let hot: u64 = hot_nodes.iter().map(|n| by_node[*n]).sum();
        let cool: u64 = by_node.iter().sum::<u64>() - hot;
        let energy = model.price_network(&sim.network).total();
        let bp_frac = sim.network.stats().backpressured_fraction();
        if mech.label == "afc" {
            println!("AFC mode map (quadrant 0 = top-left runs apache):");
            println!("{}", render_mode_map(&sim.network));
        }
        results.push((mech.label, hot, cool, energy, bp_frac));
    }

    let afc_energy = results.iter().find(|r| r.0 == "afc").expect("afc ran").3;
    let mut t = Table::new(vec![
        "mechanism",
        "apache txns",
        "water txns",
        "energy vs AFC",
        "bp cycles",
    ]);
    for (label, hot, cool, energy, bp) in &results {
        t.row(vec![
            label.to_string(),
            hot.to_string(),
            cool.to_string(),
            ratio(energy / afc_energy),
            percent(*bp),
        ]);
    }
    println!("Closed-loop consolidation on an 8x8 mesh ({measure_cycles} measured cycles):\n");
    println!("{}", t.render());
    println!(
        "Expected: AFC completes as many apache transactions as the\n\
         backpressured network (its hot quadrant runs backpressured) while\n\
         beating everyone's energy (its idle quadrants run gated)."
    );
}
