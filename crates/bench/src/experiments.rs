//! Reusable experiment drivers shared by the harness binaries and the
//! integration tests.

use afc_energy::{EnergyBreakdown, EnergyModel, EnergyParams};
use afc_netsim::config::NetworkConfig;
use afc_netsim::flit::Cycle;
use afc_netsim::network::Network;
use afc_netsim::packet::DeliveredPacket;
use afc_netsim::sim::TrafficModel;
use afc_netsim::stats::LatencyStats;
use afc_traffic::closedloop::WorkloadParams;
use afc_traffic::openloop::{OpenLoopTraffic, PacketMix, RateSpec};
use afc_traffic::runner::{run_closed_loop, run_open_loop};
use afc_traffic::synthetic::{quadrant_of, Pattern};

use crate::mechanisms::Mechanism;
use crate::sweep::run_sweep;

/// Result of one (workload, mechanism) closed-loop cell.
#[derive(Debug, Clone)]
pub struct ClosedLoopRow {
    /// Workload name.
    pub workload: &'static str,
    /// Mechanism label.
    pub mechanism: &'static str,
    /// Cycles to complete the measured transactions (lower = faster).
    pub cycles: u64,
    /// Measured injection rate, flits/node/cycle.
    pub injection_rate: f64,
    /// Priced energy over the measurement window.
    pub energy: EnergyBreakdown,
    /// Fraction of router-cycles spent backpressured.
    pub backpressured_fraction: f64,
    /// (forward, reverse, gossip) mode-switch counts.
    pub mode_switches: (u64, u64, u64),
    /// Mean deflections per delivered flit.
    pub mean_deflections: f64,
}

/// Runs one (workload, mechanism, seed) closed-loop cell.
fn closed_loop_cell(
    m: &Mechanism,
    w: &WorkloadParams,
    net_cfg: &NetworkConfig,
    warmup_txns: u64,
    measure_txns: u64,
    max_cycles: u64,
    seed: u64,
) -> ClosedLoopRow {
    let model = EnergyModel::new(EnergyParams::micro2010_70nm());
    let out = run_closed_loop(
        m.factory.as_ref(),
        net_cfg,
        *w,
        warmup_txns,
        measure_txns,
        max_cycles,
        seed,
    )
    .expect("valid configuration");
    let energy = model.price_network(&out.network);
    ClosedLoopRow {
        workload: w.name,
        mechanism: m.label,
        cycles: out.measured_cycles,
        injection_rate: out.injection_rate(),
        energy,
        backpressured_fraction: out.stats.backpressured_fraction(),
        mode_switches: (
            out.counters.mode_switches_forward,
            out.counters.mode_switches_reverse,
            out.counters.mode_switches_gossip,
        ),
        mean_deflections: out.stats.flit_deflections.mean().unwrap_or(0.0),
    }
}

/// Runs the full (mechanism x workload) closed-loop matrix used by
/// Figures 2 and 3. Cells run in parallel on the sweep engine; row order
/// is workload-major, mechanism-minor regardless of thread count.
pub fn closed_loop_matrix(
    mechanisms: &[Mechanism],
    workloads: &[WorkloadParams],
    net_cfg: &NetworkConfig,
    warmup_txns: u64,
    measure_txns: u64,
    max_cycles: u64,
    seed: u64,
) -> Vec<ClosedLoopRow> {
    let cells: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|wi| (0..mechanisms.len()).map(move |mi| (wi, mi)))
        .collect();
    run_sweep("closed-loop-matrix", &cells, |_, &(wi, mi)| {
        closed_loop_cell(
            &mechanisms[mi],
            &workloads[wi],
            net_cfg,
            warmup_txns,
            measure_txns,
            max_cycles,
            seed,
        )
    })
}

/// Looks up one cell of a matrix.
pub fn cell<'a>(rows: &'a [ClosedLoopRow], workload: &str, mechanism: &str) -> &'a ClosedLoopRow {
    rows.iter()
        .find(|r| r.workload == workload && r.mechanism == mechanism)
        .unwrap_or_else(|| panic!("no cell for ({workload}, {mechanism})"))
}

/// Performance of `mechanism` normalized to `baseline` (higher is better):
/// `cycles(baseline) / cycles(mechanism)`.
pub fn normalized_performance(
    rows: &[ClosedLoopRow],
    workload: &str,
    mechanism: &str,
    baseline: &str,
) -> f64 {
    cell(rows, workload, baseline).cycles as f64 / cell(rows, workload, mechanism).cycles as f64
}

/// Energy of `mechanism` normalized to `baseline` (lower is better).
pub fn normalized_energy(
    rows: &[ClosedLoopRow],
    workload: &str,
    mechanism: &str,
    baseline: &str,
) -> f64 {
    cell(rows, workload, mechanism).energy.total() / cell(rows, workload, baseline).energy.total()
}

/// A replicated measurement: mean and standard deviation across seeds
/// (the paper reports variance bars from repeated runs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Replicated {
    /// Mean across replications.
    pub mean: f64,
    /// Sample standard deviation (0 for a single replication).
    pub stdev: f64,
}

impl Replicated {
    /// Computes mean and sample standard deviation.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn of(samples: &[f64]) -> Replicated {
        assert!(!samples.is_empty(), "need at least one sample");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let stdev = if samples.len() < 2 {
            0.0
        } else {
            (samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
        };
        Replicated { mean, stdev }
    }
}

impl std::fmt::Display for Replicated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}±{:.2}", self.mean, self.stdev)
    }
}

/// Runs `f` once per seed on the sweep engine's work-stealing pool and
/// collects results in seed order. The simulator itself is single-threaded
/// and deterministic; this parallelizes *independent* runs (replications,
/// sweep points).
pub fn parallel_over_seeds<R, F>(seeds: &[u64], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    run_sweep("seeds", seeds, |_, &seed| f(seed))
}

/// A closed-loop matrix replicated across seeds, with normalized metrics
/// computed within each replication before averaging (matching the paper's
/// "we repeat all simulations multiple times").
#[derive(Debug)]
pub struct ReplicatedMatrix {
    matrices: Vec<Vec<ClosedLoopRow>>,
}

impl ReplicatedMatrix {
    /// Runs [`closed_loop_matrix`] once per seed.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        mechanisms: &[Mechanism],
        workloads: &[WorkloadParams],
        net_cfg: &NetworkConfig,
        warmup_txns: u64,
        measure_txns: u64,
        max_cycles: u64,
        seeds: &[u64],
    ) -> ReplicatedMatrix {
        assert!(!seeds.is_empty(), "need at least one seed");
        // Shard at (seed x workload x mechanism) granularity so even a
        // single-seed matrix fills every worker.
        let cells: Vec<(u64, usize, usize)> = seeds
            .iter()
            .flat_map(|&s| {
                (0..workloads.len())
                    .flat_map(move |wi| (0..mechanisms.len()).map(move |mi| (s, wi, mi)))
            })
            .collect();
        let rows = run_sweep("replicated-matrix", &cells, |_, &(s, wi, mi)| {
            closed_loop_cell(
                &mechanisms[mi],
                &workloads[wi],
                net_cfg,
                warmup_txns,
                measure_txns,
                max_cycles,
                s,
            )
        });
        let per_seed = workloads.len() * mechanisms.len();
        ReplicatedMatrix {
            matrices: rows
                .chunks(per_seed)
                .map(<[ClosedLoopRow]>::to_vec)
                .collect(),
        }
    }

    /// Number of replications.
    pub fn replications(&self) -> usize {
        self.matrices.len()
    }

    /// Normalized performance across replications.
    pub fn performance(&self, workload: &str, mechanism: &str, baseline: &str) -> Replicated {
        let samples: Vec<f64> = self
            .matrices
            .iter()
            .map(|m| normalized_performance(m, workload, mechanism, baseline))
            .collect();
        Replicated::of(&samples)
    }

    /// Normalized energy across replications.
    pub fn energy(&self, workload: &str, mechanism: &str, baseline: &str) -> Replicated {
        let samples: Vec<f64> = self
            .matrices
            .iter()
            .map(|m| normalized_energy(m, workload, mechanism, baseline))
            .collect();
        Replicated::of(&samples)
    }
}

/// Geometric mean.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        (log_sum / n as f64).exp()
    }
}

/// One point of a latency-throughput sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Offered rate, flits/node/cycle.
    pub offered: f64,
    /// Accepted throughput, flits/node/cycle.
    pub throughput: f64,
    /// Mean packet network latency (`None` if nothing was delivered).
    pub latency: Option<f64>,
    /// Mean deflections per delivered flit.
    pub mean_deflections: f64,
}

/// Sweeps offered load for one mechanism under open-loop traffic.
#[allow(clippy::too_many_arguments)]
pub fn latency_throughput_sweep(
    mechanism: &Mechanism,
    rates: &[f64],
    net_cfg: &NetworkConfig,
    pattern: Pattern,
    mix: PacketMix,
    warmup_cycles: u64,
    measure_cycles: u64,
    seed: u64,
) -> Vec<SweepPoint> {
    run_sweep("latency-throughput", rates, |_, &offered| {
        let out = run_open_loop(
            mechanism.factory.as_ref(),
            net_cfg,
            RateSpec::Uniform(offered),
            pattern.clone(),
            mix,
            warmup_cycles,
            measure_cycles,
            seed,
        )
        .expect("valid configuration");
        SweepPoint {
            offered,
            throughput: out.stats.throughput(out.network.mesh().node_count()),
            latency: out.mean_latency(),
            mean_deflections: out.stats.flit_deflections.mean().unwrap_or(0.0),
        }
    })
}

/// Estimates saturation throughput: the highest accepted throughput over a
/// sweep (flits/node/cycle).
pub fn saturation_throughput(points: &[SweepPoint]) -> f64 {
    points.iter().map(|p| p.throughput).fold(0.0, f64::max)
}

/// Open-loop traffic that additionally tracks per-quadrant latency (for the
/// Section V-B spatial-variation experiment).
#[derive(Debug)]
pub struct QuadrantTraffic {
    inner: OpenLoopTraffic,
    /// Latency of packets by source quadrant.
    pub latency_by_quadrant: [LatencyStats; 4],
}

impl QuadrantTraffic {
    /// Wraps an open-loop source.
    pub fn new(inner: OpenLoopTraffic) -> QuadrantTraffic {
        QuadrantTraffic {
            inner,
            latency_by_quadrant: Default::default(),
        }
    }

    /// Resets the per-quadrant statistics (end of warmup).
    pub fn reset(&mut self) {
        self.latency_by_quadrant = Default::default();
    }
}

impl TrafficModel for QuadrantTraffic {
    fn pre_cycle(&mut self, now: Cycle, net: &mut Network) {
        self.inner.pre_cycle(now, net);
    }

    fn on_delivered(&mut self, packet: &DeliveredPacket, now: Cycle, net: &mut Network) {
        self.inner.on_delivered(packet, now, net);
        let q = quadrant_of(packet.descriptor.src, net.mesh());
        self.latency_by_quadrant[q].record(packet.network_latency());
    }
}

/// Result of the spatial-variation experiment for one mechanism.
#[derive(Debug, Clone)]
pub struct SpatialResult {
    /// Mechanism label.
    pub mechanism: &'static str,
    /// Total network energy over the measurement window.
    pub energy: EnergyBreakdown,
    /// Mean latency of packets sourced in each quadrant (0 = the hot
    /// quadrant).
    pub latency_by_quadrant: [Option<f64>; 4],
    /// Fraction of router-cycles spent backpressured.
    pub backpressured_fraction: f64,
}

/// Runs the Section V-B experiment: an 8x8 mesh where quadrant 0 injects at
/// `hot_rate` and the rest at `cool_rate`, destinations staying within the
/// source quadrant.
pub fn spatial_experiment(
    mechanism: &Mechanism,
    hot_rate: f64,
    cool_rate: f64,
    warmup_cycles: u64,
    measure_cycles: u64,
    seed: u64,
) -> SpatialResult {
    let net_cfg = NetworkConfig::paper_8x8();
    let network =
        Network::new(net_cfg, mechanism.factory.as_ref(), seed).expect("paper 8x8 config is valid");
    let mesh = network.mesh().clone();
    let rates: Vec<f64> = mesh
        .nodes()
        .map(|n| {
            if quadrant_of(n, &mesh) == 0 {
                hot_rate
            } else {
                cool_rate
            }
        })
        .collect();
    let inner = OpenLoopTraffic::new(
        RateSpec::PerNode(rates),
        Pattern::Quadrant,
        PacketMix::paper(),
        seed,
    );
    let mut sim = afc_netsim::sim::Simulation::new(network, QuadrantTraffic::new(inner));
    sim.run(warmup_cycles);
    sim.network.reset_metrics();
    sim.traffic.reset();
    sim.run(measure_cycles);

    let model = EnergyModel::new(EnergyParams::micro2010_70nm());
    let energy = model.price_network(&sim.network);
    let latency_by_quadrant = [0, 1, 2, 3].map(|q| sim.traffic.latency_by_quadrant[q].mean());
    SpatialResult {
        mechanism: mechanism.label,
        energy,
        latency_by_quadrant,
        backpressured_fraction: sim.network.stats().backpressured_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::fig2_mechanisms;
    use afc_traffic::workloads;

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty::<f64>()).is_nan());
    }

    #[test]
    fn matrix_and_normalization() {
        let mechs = fig2_mechanisms();
        let rows = closed_loop_matrix(
            &mechs[..2], // backpressured + backpressureless for speed
            &[workloads::water()],
            &NetworkConfig::paper_3x3(),
            20,
            60,
            3_000_000,
            3,
        );
        assert_eq!(rows.len(), 2);
        let p = normalized_performance(&rows, "water", "backpressured", "backpressured");
        assert!((p - 1.0).abs() < 1e-12);
        let e = normalized_energy(&rows, "water", "backpressureless", "backpressured");
        assert!(
            e > 0.0 && e < 1.0,
            "bufferless must save energy at low load"
        );
    }

    #[test]
    fn parallel_over_seeds_preserves_order_and_results() {
        let serial: Vec<u64> = [3u64, 1, 4, 1, 5].iter().map(|s| s * s).collect();
        let parallel = parallel_over_seeds(&[3, 1, 4, 1, 5], |s| s * s);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn replicated_statistics() {
        let r = Replicated::of(&[1.0, 2.0, 3.0]);
        assert!((r.mean - 2.0).abs() < 1e-12);
        assert!((r.stdev - 1.0).abs() < 1e-12);
        assert_eq!(format!("{r}"), "2.00±1.00");
        let single = Replicated::of(&[5.0]);
        assert_eq!(single.stdev, 0.0);
    }

    #[test]
    fn replicated_matrix_reports_variance() {
        let mechs = fig2_mechanisms();
        let rm = ReplicatedMatrix::run(
            &mechs[..2],
            &[workloads::water()],
            &NetworkConfig::paper_3x3(),
            20,
            60,
            3_000_000,
            &[1, 2],
        );
        assert_eq!(rm.replications(), 2);
        let p = rm.performance("water", "backpressureless", "backpressured");
        assert!(p.mean > 0.5 && p.mean < 1.5);
        assert!(p.stdev >= 0.0);
        let e = rm.energy("water", "backpressureless", "backpressured");
        assert!(e.mean < 1.0);
    }

    #[test]
    fn sweep_points_are_monotone_in_offered_rate() {
        let mechs = fig2_mechanisms();
        let points = latency_throughput_sweep(
            &mechs[0],
            &[0.02, 0.10],
            &NetworkConfig::paper_3x3(),
            Pattern::UniformRandom,
            PacketMix::single_flit(),
            500,
            2_000,
            5,
        );
        assert_eq!(points.len(), 2);
        assert!(points[1].throughput > points[0].throughput);
        assert!(saturation_throughput(&points) >= points[1].throughput);
    }
}
