//! Section III-E's lazy-VC-allocation claims, tested head to head:
//! AFC's backpressured mode uses **half** the buffering of the tuned
//! baseline (32 vs. 64 flits per port) while matching its performance, and
//! increasing the baseline's buffers further buys nothing.

use afc_noc::prelude::*;

fn cycles(factory: &dyn afc_netsim::router::RouterFactory, w: WorkloadParams, seed: u64) -> u64 {
    run_closed_loop(
        factory,
        &NetworkConfig::paper_3x3(),
        w,
        200,
        800,
        50_000_000,
        seed,
    )
    .unwrap()
    .measured_cycles
}

#[test]
fn afc_halves_buffers_without_losing_performance() {
    let cfg = NetworkConfig::paper_3x3();
    let bp = BackpressuredFactory::new();
    let afc_bp = AfcFactory::always_backpressured();
    use afc_netsim::router::RouterFactory;
    assert_eq!(bp.buffer_flits_per_port(&cfg), 64);
    assert_eq!(afc_bp.buffer_flits_per_port(&cfg), 32);

    for w in [workloads::apache(), workloads::oltp()] {
        let base = cycles(&bp, w, 3);
        let lazy = cycles(&afc_bp, w, 3);
        let ratio = lazy as f64 / base as f64;
        assert!(
            ratio < 1.08,
            "{}: lazy-VC router with half the buffers must stay within 8% \
             of the baseline (got {ratio:.3})",
            w.name
        );
    }
}

#[test]
fn baseline_is_buffer_tuned_as_the_paper_states() {
    // "Adding more VCs (or increasing buffer-depths) resulted in no
    // significant performance improvement" (Section IV). Double the
    // baseline's buffer depth and check the speedup is marginal.
    let mut big = NetworkConfig::paper_3x3();
    for v in &mut big.vnets {
        v.buffer_depth *= 2;
    }
    // Average over seeds: completion-order timing shifts act as noise on
    // individual runs.
    let speedup = |w: WorkloadParams| {
        let total = |cfg: &NetworkConfig| -> u64 {
            (5..8)
                .map(|seed| {
                    run_closed_loop(
                        &BackpressuredFactory::new(),
                        cfg,
                        w,
                        200,
                        800,
                        50_000_000,
                        seed,
                    )
                    .unwrap()
                    .measured_cycles
                })
                .sum()
        };
        total(&NetworkConfig::paper_3x3()) as f64 / total(&big) as f64
    };
    // At low load extra buffering is pure waste.
    let low = speedup(workloads::water());
    assert!(
        low < 1.02,
        "doubling buffers must not speed water up at all (got {low:.3})"
    );
    // At high load our calibrated apache runs closer to saturation than the
    // paper's, so doubled buffering absorbs bursts for a modest gain —
    // bounded here so a regression toward buffer-starvation is caught.
    let high = speedup(workloads::apache());
    assert!(
        high < 1.12,
        "doubling buffers must not transform apache performance (got {high:.3})"
    );
}

#[test]
fn lazy_vcs_keep_flits_of_one_vnet_from_blocking_another() {
    // HOL-blocking sanity: saturate the data vnet toward one destination
    // and verify control packets on another vnet still flow briskly
    // through the always-backpressured AFC router network.
    let cfg = NetworkConfig::paper_3x3();
    let mut net = Network::new(cfg, &AfcFactory::always_backpressured(), 9).unwrap();
    let mesh = net.mesh().clone();
    let sink = mesh.node_at(Coord::new(2, 2)).unwrap();
    let src = mesh.node_at(Coord::new(0, 0)).unwrap();
    // Flood data packets from several sources toward one sink.
    for n in mesh.nodes().filter(|n| *n != sink) {
        for _ in 0..4 {
            net.offer_packet(
                n,
                afc_netsim::packet::PacketInput {
                    dest: sink,
                    vnet: VirtualNetwork(2),
                    len: 16,
                    kind: afc_netsim::packet::PacketKind::Synthetic,
                    tag: 0,
                },
            );
        }
    }
    // One control packet from the far corner, through the congested middle.
    let probe = net.offer_packet(
        src,
        afc_netsim::packet::PacketInput {
            dest: sink,
            vnet: VirtualNetwork(0),
            len: 1,
            kind: afc_netsim::packet::PacketKind::Synthetic,
            tag: 42,
        },
    );
    let mut probe_latency = None;
    for _ in 0..20_000 {
        net.step();
        for p in net.take_delivered() {
            if p.descriptor.id == probe {
                probe_latency = Some(p.total_latency());
            }
        }
        if probe_latency.is_some() {
            break;
        }
    }
    let latency = probe_latency.expect("control probe must arrive");
    // Zero-load latency for 4 hops is 17; allow generous congestion slack
    // but far less than draining the data flood would take (thousands).
    assert!(
        latency < 500,
        "control vnet must not be HOL-blocked behind data (latency {latency})"
    );
}
