//! Parallel deterministic sweep engine.
//!
//! Every paper artifact is a grid of *independent* simulation runs
//! (mechanism × workload × load point × seed). Each run owns a private
//! [`SimRng`](afc_netsim::rng::SimRng) seeded from its spec alone and
//! shares no mutable state with any other run, so the grid is
//! embarrassingly parallel. This module provides the one executor all
//! harness binaries use:
//!
//! - [`run_sweep`] shards a job list across a work-stealing pool of std
//!   threads (no external dependencies) and reassembles results **in spec
//!   order**, so output is bit-identical regardless of thread count.
//! - [`SweepSpec`] / [`RunSpec`] describe a grid declaratively as plain
//!   data, with a canonical serialization ([`SweepResults::serialize`])
//!   used by the determinism regression tests.
//!
//! # Determinism contract
//!
//! 1. Workers receive disjoint job indices from an atomic cursor; which
//!    worker executes which job is racy, but results land in a slot keyed
//!    by job index, so the reassembled `Vec` is always in spec order.
//! 2. Job closures must be pure functions of `(index, job)` — they must
//!    not read or write state shared with other jobs. All simulator
//!    entropy comes from the per-run seed.
//! 3. Wall-clock timing is observed by the engine (for the per-run timing
//!    report) but never fed back into results.
//!
//! Setting `AFC_SWEEP_SELFCHECK=1` makes [`SweepSpec::execute`] re-run the
//! whole spec serially and assert the serialized results are byte-identical
//! to the parallel run — a cheap way to detect an accidental shared-state
//! leak in a new experiment.
//!
//! Thread count: `--threads N` (via [`parse_threads_arg`]) beats the
//! `AFC_BENCH_THREADS` environment variable, which beats
//! [`std::thread::available_parallelism`].

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

use afc_energy::{EnergyModel, EnergyParams};
use afc_netsim::config::{NetworkConfig, RetransmitConfig};
use afc_netsim::faults::FaultPlan;
use afc_traffic::closedloop::WorkloadParams;
use afc_traffic::openloop::{PacketMix, RateSpec};
use afc_traffic::runner::{run_closed_loop, run_fault_scenario, run_open_loop};
use afc_traffic::synthetic::Pattern;

use crate::mechanisms::MechanismId;

/// Explicit `--threads` override; 0 means unset.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Per-run wall-clock records, drained by [`write_timing_report`].
static TIMINGS: Mutex<Vec<TimingRecord>> = Mutex::new(Vec::new());

struct TimingRecord {
    sweep: String,
    run: usize,
    micros: u128,
}

/// Sets the worker-thread count explicitly (wins over the environment).
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn set_threads(n: usize) {
    assert!(n > 0, "thread count must be at least 1");
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Consumes a `--threads N` argument if present and applies it via
/// [`set_threads`]. Call once from a binary's `main`.
///
/// # Panics
///
/// Panics if `--threads` is present without a positive integer value.
pub fn parse_threads_arg(args: &[String]) {
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let n: usize = args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .filter(|n| *n > 0)
            .expect("--threads requires a positive integer");
        set_threads(n);
    }
}

/// Worker-thread count: `--threads` override, then `AFC_BENCH_THREADS`,
/// then the machine's available parallelism.
pub fn threads() -> usize {
    let explicit = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Some(n) = std::env::var("AFC_BENCH_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|n| *n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Whether the determinism self-check mode is enabled
/// (`AFC_SWEEP_SELFCHECK=1`).
pub fn selfcheck_enabled() -> bool {
    std::env::var("AFC_SWEEP_SELFCHECK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Runs `f` over every job with [`threads`] workers and returns the
/// results in job order. See the module docs for the determinism contract.
pub fn run_sweep<J, R, F>(name: &str, jobs: &[J], f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    run_sweep_on(name, jobs, &f, threads())
}

/// [`run_sweep`] with an explicit worker count (used by the determinism
/// tests so they need not mutate global state).
pub fn run_sweep_on<J, R, F>(name: &str, jobs: &[J], f: &F, threads: usize) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    let workers = threads.max(1).min(jobs.len());
    if workers <= 1 {
        return jobs
            .iter()
            .enumerate()
            .map(|(i, job)| {
                let start = Instant::now();
                let r = f(i, job);
                record_timing(name, i, start.elapsed().as_micros());
                r
            })
            .collect();
    }

    // Work-stealing pool: an atomic cursor hands out job indices, workers
    // report (index, result) over a channel, and the collector writes each
    // result into its index slot — spec order by construction.
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    let mut slots: Vec<Option<R>> = (0..jobs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let start = Instant::now();
                let r = f(i, &jobs[i]);
                if tx.send((i, r, start.elapsed().as_micros())).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, r, micros) in rx {
            record_timing(name, i, micros);
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every job index was handed to exactly one worker"))
        .collect()
}

fn record_timing(sweep: &str, run: usize, micros: u128) {
    TIMINGS
        .lock()
        .expect("timing registry poisoned")
        .push(TimingRecord {
            sweep: sweep.to_string(),
            run,
            micros,
        });
}

/// Writes (and drains) the per-run timing report accumulated by every
/// sweep since the last call, to `results/timing/<binary>.tsv`.
///
/// Wall-clock values are inherently nondeterministic, which is why they
/// live outside the experiment's own `results/` artifacts: byte-identity
/// across thread counts is promised for sweep *results*, not timings.
///
/// # Errors
///
/// Propagates filesystem errors from creating or writing the report.
pub fn write_timing_report(binary: &str) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("results").join("timing");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{binary}.tsv"));
    let records = std::mem::take(&mut *TIMINGS.lock().expect("timing registry poisoned"));
    let total_ms = records.iter().map(|r| r.micros).sum::<u128>() as f64 / 1_000.0;
    let mut out = String::new();
    out.push_str("# per-run wall-clock; nondeterministic by nature, not part of the\n");
    out.push_str("# byte-identical sweep results\n");
    out.push_str(&format!("# binary\t{binary}\n# threads\t{}\n", threads()));
    out.push_str("sweep\trun\tmillis\n");
    for r in &records {
        out.push_str(&format!(
            "{}\t{}\t{:.3}\n",
            r.sweep,
            r.run,
            r.micros as f64 / 1_000.0
        ));
    }
    out.push_str(&format!("total\t{}\t{total_ms:.3}\n", records.len()));
    std::fs::write(&path, out)?;
    Ok(path)
}

/// One simulation run, described as plain data. Workers rebuild the router
/// factory from the [`MechanismId`], so specs are freely `Clone` + `Send`.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Which router mechanism to run.
    pub mechanism: MechanismId,
    /// The run's private RNG seed.
    pub seed: u64,
    /// The scenario.
    pub kind: RunKind,
}

/// The scenario of a [`RunSpec`].
#[derive(Debug, Clone)]
pub enum RunKind {
    /// Closed-loop workload run ([`run_closed_loop`]).
    ClosedLoop {
        /// Workload preset.
        workload: WorkloadParams,
        /// Transactions to complete before measurement starts.
        warmup_txns: u64,
        /// Transactions measured.
        measure_txns: u64,
        /// Abort budget.
        max_cycles: u64,
    },
    /// Open-loop synthetic-traffic run ([`run_open_loop`]).
    OpenLoop {
        /// Offered rate, flits/node/cycle.
        rate: f64,
        /// Traffic pattern.
        pattern: Pattern,
        /// Packet-length mix.
        mix: PacketMix,
        /// Warmup cycles.
        warmup_cycles: u64,
        /// Measured cycles.
        measure_cycles: u64,
    },
    /// Fault-injection inject-then-drain run ([`run_fault_scenario`]).
    Fault {
        /// Offered rate, flits/node/cycle.
        rate: f64,
        /// Per-flit-hop drop probability.
        drop_rate: f64,
        /// Per-flit-hop corruption probability.
        corrupt_rate: f64,
        /// Cycles of live injection.
        inject_cycles: u64,
        /// Drain budget after sources stop.
        drain_cycles: u64,
    },
}

impl RunSpec {
    /// A short deterministic label: `mechanism/scenario@seed`.
    pub fn label(&self) -> String {
        let scenario = match &self.kind {
            RunKind::ClosedLoop { workload, .. } => workload.name.to_string(),
            RunKind::OpenLoop { rate, .. } => format!("open@{rate:.3}"),
            RunKind::Fault {
                rate, drop_rate, ..
            } => format!("fault@{rate:.3}/{drop_rate:e}"),
        };
        format!("{}/{}@{}", self.mechanism.label(), scenario, self.seed)
    }

    /// Executes the run against `net_cfg` and reduces it to the flat
    /// deterministic metrics of [`RunOutput`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or a closed-loop run blows
    /// its cycle budget, mirroring the underlying runners.
    pub fn execute(&self, net_cfg: &NetworkConfig) -> RunOutput {
        let mechanism = self.mechanism.mechanism();
        let model = EnergyModel::new(EnergyParams::micro2010_70nm());
        match &self.kind {
            RunKind::ClosedLoop {
                workload,
                warmup_txns,
                measure_txns,
                max_cycles,
            } => {
                let out = run_closed_loop(
                    mechanism.factory.as_ref(),
                    net_cfg,
                    *workload,
                    *warmup_txns,
                    *measure_txns,
                    *max_cycles,
                    self.seed,
                )
                .expect("valid configuration");
                RunOutput {
                    label: self.label(),
                    cycles: out.measured_cycles,
                    packets_delivered: out.stats.packets_delivered,
                    flits_delivered: out.stats.flits_delivered,
                    injection_rate: out.injection_rate(),
                    throughput: out.stats.throughput(out.network.mesh().node_count()),
                    mean_latency: out.mean_latency(),
                    energy_pj: model.price_network(&out.network).total(),
                    backpressured_fraction: out.stats.backpressured_fraction(),
                    mean_deflections: out.stats.flit_deflections.mean().unwrap_or(0.0),
                    delivered_fraction: delivered_fraction(&out.stats),
                    outcome: "ok".to_string(),
                }
            }
            RunKind::OpenLoop {
                rate,
                pattern,
                mix,
                warmup_cycles,
                measure_cycles,
            } => {
                let out = run_open_loop(
                    mechanism.factory.as_ref(),
                    net_cfg,
                    RateSpec::Uniform(*rate),
                    pattern.clone(),
                    *mix,
                    *warmup_cycles,
                    *measure_cycles,
                    self.seed,
                )
                .expect("valid configuration");
                RunOutput {
                    label: self.label(),
                    cycles: out.measured_cycles,
                    packets_delivered: out.stats.packets_delivered,
                    flits_delivered: out.stats.flits_delivered,
                    injection_rate: out.injection_rate(),
                    throughput: out.stats.throughput(out.network.mesh().node_count()),
                    mean_latency: out.mean_latency(),
                    energy_pj: model.price_network(&out.network).total(),
                    backpressured_fraction: out.stats.backpressured_fraction(),
                    mean_deflections: out.stats.flit_deflections.mean().unwrap_or(0.0),
                    delivered_fraction: delivered_fraction(&out.stats),
                    outcome: "ok".to_string(),
                }
            }
            RunKind::Fault {
                rate,
                drop_rate,
                corrupt_rate,
                inject_cycles,
                drain_cycles,
            } => {
                let cfg = NetworkConfig {
                    faults: FaultPlan::uniform_transient(*drop_rate, *corrupt_rate),
                    retransmit: Some(RetransmitConfig::default()),
                    ..net_cfg.clone()
                };
                let out = run_fault_scenario(
                    mechanism.factory.as_ref(),
                    &cfg,
                    RateSpec::Uniform(*rate),
                    Pattern::UniformRandom,
                    PacketMix::paper(),
                    *inject_cycles,
                    *drain_cycles,
                    self.seed,
                )
                .expect("valid configuration");
                let outcome = match &out.error {
                    Some(e) => format!("error: {e}"),
                    None if out.drained => "drained".to_string(),
                    None => "drain budget exhausted".to_string(),
                };
                RunOutput {
                    label: self.label(),
                    cycles: out.ran_cycles,
                    packets_delivered: out.stats.packets_delivered,
                    flits_delivered: out.stats.flits_delivered,
                    injection_rate: 0.0,
                    throughput: 0.0,
                    mean_latency: out.stats.network_latency.mean(),
                    energy_pj: model.price_network(&out.network).total(),
                    backpressured_fraction: out.stats.backpressured_fraction(),
                    mean_deflections: out.stats.flit_deflections.mean().unwrap_or(0.0),
                    delivered_fraction: out.delivered_fraction(),
                    outcome,
                }
            }
        }
    }
}

fn delivered_fraction(stats: &afc_netsim::stats::NetworkStats) -> f64 {
    if stats.packets_offered == 0 {
        1.0
    } else {
        stats.packets_delivered as f64 / stats.packets_offered as f64
    }
}

/// A declarative grid of independent runs over one network configuration.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Sweep name (used in timing reports and error messages).
    pub name: String,
    /// Network configuration shared by every run.
    pub net_cfg: NetworkConfig,
    /// The runs, in output order.
    pub runs: Vec<RunSpec>,
}

impl SweepSpec {
    /// Executes the sweep with [`threads`] workers. When
    /// [`selfcheck_enabled`], additionally re-runs serially and asserts
    /// byte-identical results.
    pub fn execute(&self) -> SweepResults {
        let n = threads();
        let results = self.execute_with_threads(n);
        if selfcheck_enabled() && n > 1 {
            let serial = self.execute_with_threads(1);
            assert_eq!(
                serial.serialize(),
                results.serialize(),
                "sweep '{}' produced thread-count-dependent results — a run \
                 is sharing mutable state",
                self.name
            );
        }
        results
    }

    /// Executes with an explicit worker count.
    pub fn execute_with_threads(&self, threads: usize) -> SweepResults {
        let outputs = run_sweep_on(
            &self.name,
            &self.runs,
            &|_, run: &RunSpec| run.execute(&self.net_cfg),
            threads,
        );
        SweepResults { outputs }
    }
}

/// Flat deterministic metrics of one run. Every field is a pure function
/// of the spec; see [`RunOutput::serialize`] for the canonical encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// The spec's label.
    pub label: String,
    /// Measured (closed/open loop) or total (fault) cycles.
    pub cycles: u64,
    /// Packets delivered in the window.
    pub packets_delivered: u64,
    /// Flits delivered in the window.
    pub flits_delivered: u64,
    /// Measured injection rate, flits/node/cycle (0 for fault runs).
    pub injection_rate: f64,
    /// Accepted throughput, flits/node/cycle (0 for fault runs).
    pub throughput: f64,
    /// Mean packet network latency, if anything was delivered.
    pub mean_latency: Option<f64>,
    /// Total priced network energy (pJ).
    pub energy_pj: f64,
    /// Fraction of router-cycles spent backpressured.
    pub backpressured_fraction: f64,
    /// Mean deflections per delivered flit.
    pub mean_deflections: f64,
    /// Delivered / offered packets.
    pub delivered_fraction: f64,
    /// Terminal status ("ok", "drained", or an error description).
    pub outcome: String,
}

impl RunOutput {
    /// Canonical tab-separated encoding. Floats use Rust's shortest
    /// round-trip formatting, so equal bytes ⇔ equal bits.
    pub fn serialize(&self) -> String {
        let lat = match self.mean_latency {
            Some(l) => format!("{l:?}"),
            None => "-".to_string(),
        };
        format!(
            "{}\t{}\t{}\t{}\t{:?}\t{:?}\t{}\t{:?}\t{:?}\t{:?}\t{:?}\t{}",
            self.label,
            self.cycles,
            self.packets_delivered,
            self.flits_delivered,
            self.injection_rate,
            self.throughput,
            lat,
            self.energy_pj,
            self.backpressured_fraction,
            self.mean_deflections,
            self.delivered_fraction,
            self.outcome,
        )
    }
}

/// Results of a [`SweepSpec`], in spec order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResults {
    /// One output per run, in spec order.
    pub outputs: Vec<RunOutput>,
}

impl SweepResults {
    /// Canonical serialization: header plus one [`RunOutput::serialize`]
    /// line per run. Byte-identical across thread counts.
    pub fn serialize(&self) -> String {
        let mut out = String::from(
            "label\tcycles\tpackets\tflits\tinj_rate\tthroughput\tmean_lat\t\
             energy_pj\tbp_frac\tmean_defl\tdelivered\toutcome\n",
        );
        for o in &self.outputs {
            out.push_str(&o.serialize());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_spec_order_at_any_worker_count() {
        let jobs: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = jobs.iter().map(|j| j * j).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = run_sweep_on("order", &jobs, &|_, &j| j * j, workers);
            assert_eq!(got, expect, "worker count {workers}");
        }
    }

    #[test]
    fn sweep_handles_empty_and_singleton_job_lists() {
        let empty: Vec<u64> = Vec::new();
        assert!(run_sweep_on("empty", &empty, &|_, &j: &u64| j, 8).is_empty());
        assert_eq!(run_sweep_on("one", &[7u64], &|_, &j| j + 1, 8), vec![8]);
    }

    #[test]
    fn run_output_serialization_is_exact() {
        let a = RunOutput {
            label: "x".into(),
            cycles: 1,
            packets_delivered: 2,
            flits_delivered: 3,
            injection_rate: 0.1,
            throughput: 0.2,
            mean_latency: Some(31.5),
            energy_pj: 1234.5678,
            backpressured_fraction: 0.25,
            mean_deflections: 0.0,
            delivered_fraction: 1.0,
            outcome: "ok".into(),
        };
        let mut b = a.clone();
        assert_eq!(a.serialize(), b.serialize());
        // One ULP of difference must change the encoding.
        b.throughput = f64::from_bits(b.throughput.to_bits() + 1);
        assert_ne!(a.serialize(), b.serialize());
    }

    #[test]
    fn threads_env_and_override_precedence() {
        // No override set by default in this test binary: the value is
        // env- or machine-derived, but always at least 1.
        assert!(threads() >= 1);
    }
}
