//! Network-wide configuration shared by every router implementation.

use crate::error::ConfigError;
use crate::faults::FaultPlan;
use crate::topology::Mesh;

/// Message class carried by a virtual network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VnetClass {
    /// Short control messages (coherence requests/acknowledgements).
    Control,
    /// Multi-flit data messages (cache blocks).
    Data,
}

/// Per-virtual-network buffering configuration of a router input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VnetConfig {
    /// Message class.
    pub class: VnetClass,
    /// Virtual channels per input port in this vnet.
    pub vcs: usize,
    /// Buffer depth (flits) of each VC.
    pub buffer_depth: usize,
}

impl VnetConfig {
    /// Total flit slots this vnet contributes per input port.
    pub fn flit_slots(&self) -> usize {
        self.vcs * self.buffer_depth
    }
}

/// Complete static configuration of a simulated network.
///
/// The same configuration drives all router implementations; routers that do
/// not use buffers (the backpressureless baseline) ignore the buffering
/// fields, and the AFC router reinterprets them through its lazy-VC layout
/// (see `afc-core`).
///
/// # Examples
///
/// ```
/// use afc_netsim::config::NetworkConfig;
/// let cfg = NetworkConfig::paper_3x3();
/// assert_eq!(cfg.vnets.len(), 3);
/// assert_eq!(cfg.buffer_flits_per_port(), 64); // 2*2*8 + 4*8 (Table II)
/// cfg.validate().expect("paper preset is valid");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Mesh width (columns).
    pub width: u16,
    /// Mesh height (rows).
    pub height: u16,
    /// Link latency `L` in cycles.
    pub link_latency: u64,
    /// Virtual networks, in index order.
    pub vnets: Vec<VnetConfig>,
    /// Flits the local ejection port can deliver per cycle.
    pub eject_bandwidth: usize,
    /// Watchdog: a flit older than this many cycles in the network aborts the
    /// simulation (livelock/starvation detector). `0` disables the check.
    pub max_flit_age: u64,
    /// Deadlock/livelock watchdog: if no flit makes progress (injection,
    /// delivery, or retransmission) for this many consecutive cycles while
    /// flits are still in flight, the step fails with
    /// [`SimError::Stalled`](crate::error::SimError). `0` disables the check.
    pub stall_watchdog: u64,
    /// Fault-injection schedule. [`FaultPlan::none`] (the default presets'
    /// value) injects nothing.
    pub faults: FaultPlan,
    /// End-to-end recovery: when set, network interfaces track outstanding
    /// packets and retransmit those not acknowledged before the timeout.
    pub retransmit: Option<RetransmitConfig>,
    /// Worker threads for the intra-run parallel cycle engine (DESIGN.md
    /// §12). `1` (the presets' value) steps serially; any value produces
    /// byte-identical results, so this is purely a wall-clock knob. The
    /// `AFC_SIM_THREADS` environment variable overrides it at
    /// `Network::new` time.
    pub sim_threads: usize,
}

/// NI-level end-to-end retransmission parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetransmitConfig {
    /// Base cycles to wait after a packet finishes injecting before
    /// retransmitting it (doubled per attempt, capped by `backoff_cap`).
    pub timeout: u64,
    /// Maximum number of doublings applied to `timeout` (capped exponential
    /// backoff).
    pub backoff_cap: u32,
    /// Retransmission attempts after which the NI gives up on a packet and
    /// records a structured per-packet `Unreachable` outcome instead of
    /// retrying forever into (say) a permanently killed link. `0` means
    /// unlimited — the pre-fault-tolerance behavior.
    pub max_attempts: u32,
}

impl Default for RetransmitConfig {
    /// A timeout comfortably above one mesh traversal on the paper meshes,
    /// with backoff capped at 16x the base timeout and unlimited attempts.
    fn default() -> Self {
        RetransmitConfig {
            timeout: 600,
            backoff_cap: 4,
            max_attempts: 0,
        }
    }
}

impl RetransmitConfig {
    /// A bounded-recovery preset for fault experiments: default timing, but
    /// give up (and record `Unreachable`) after `attempts` retransmissions.
    pub fn bounded(attempts: u32) -> RetransmitConfig {
        RetransmitConfig {
            max_attempts: attempts,
            ..RetransmitConfig::default()
        }
    }

    /// How long a partial reassembly buffer may go without a new flit
    /// before the destination NI discards it (counted as
    /// `reassemblies_expired`).
    ///
    /// Four maximally backed-off retransmit periods: longer than any quiet
    /// gap a still-retrying source can produce, so an *active* packet is
    /// never purged — only one whose source has given up (bounded
    /// retransmit) or whose remaining flits a permanent fault keeps
    /// eating. Deterministic: derived purely from the config.
    pub fn reassembly_ttl(&self) -> u64 {
        (self.timeout << self.backoff_cap.min(63)).saturating_mul(4)
    }
}

impl NetworkConfig {
    /// The paper's simulated machine (Table II): 3x3 mesh, 2-cycle links,
    /// two control vnets with 2 VCs each and one data vnet with 4 VCs, all
    /// 8 flits deep (2*2*8 + 4*8 = 64 flits per port).
    pub fn paper_3x3() -> NetworkConfig {
        NetworkConfig {
            width: 3,
            height: 3,
            link_latency: 2,
            vnets: vec![
                VnetConfig {
                    class: VnetClass::Control,
                    vcs: 2,
                    buffer_depth: 8,
                },
                VnetConfig {
                    class: VnetClass::Control,
                    vcs: 2,
                    buffer_depth: 8,
                },
                VnetConfig {
                    class: VnetClass::Data,
                    vcs: 4,
                    buffer_depth: 8,
                },
            ],
            eject_bandwidth: 1,
            max_flit_age: 200_000,
            stall_watchdog: 100_000,
            faults: FaultPlan::none(),
            retransmit: None,
            sim_threads: 1,
        }
    }

    /// The 8x8 consolidation-workload mesh of the paper's Section V-B
    /// open-loop spatial-variation experiment (same per-port buffering as
    /// [`NetworkConfig::paper_3x3`]).
    pub fn paper_8x8() -> NetworkConfig {
        NetworkConfig {
            width: 8,
            height: 8,
            ..NetworkConfig::paper_3x3()
        }
    }

    /// Builds the [`Mesh`] described by this configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EmptyMesh`] for zero dimensions.
    pub fn mesh(&self) -> Result<Mesh, ConfigError> {
        Mesh::new(self.width, self.height)
    }

    /// Number of virtual networks.
    pub fn vnet_count(&self) -> usize {
        self.vnets.len()
    }

    /// Total VCs per input port across all vnets.
    pub fn total_vcs_per_port(&self) -> usize {
        self.vnets.iter().map(|v| v.vcs).sum()
    }

    /// Total buffer flit slots per input port across all vnets.
    pub fn buffer_flits_per_port(&self) -> usize {
        self.vnets.iter().map(|v| v.flit_slots()).sum()
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: nonzero mesh, at least one
    /// vnet, nonzero VCs/depths, nonzero link latency, nonzero ejection
    /// bandwidth.
    pub fn validate(&self) -> Result<(), ConfigError> {
        Mesh::new(self.width, self.height)?;
        if (self.width as u32) * (self.height as u32) < 2 {
            // A 1x1 mesh has no links: every experiment degenerates and the
            // routing invariants the engine audits are vacuous. Degenerate
            // 1xN meshes stay legal (the tier-1 suite exercises them).
            return Err(ConfigError::OutOfRange {
                what: "mesh size",
                range: ">= 2 nodes",
            });
        }
        if self.vnets.is_empty() {
            return Err(ConfigError::NoVnets);
        }
        for (i, v) in self.vnets.iter().enumerate() {
            if v.vcs == 0 {
                return Err(ConfigError::ZeroVcs { vnet: i });
            }
            if v.buffer_depth == 0 {
                return Err(ConfigError::ZeroBufferDepth { vnet: i });
            }
        }
        if self.link_latency == 0 {
            return Err(ConfigError::ZeroLinkLatency);
        }
        if self.eject_bandwidth == 0 {
            return Err(ConfigError::OutOfRange {
                what: "eject_bandwidth",
                range: ">= 1",
            });
        }
        if self.sim_threads == 0 {
            return Err(ConfigError::OutOfRange {
                what: "sim_threads",
                range: ">= 1",
            });
        }
        self.faults.validate(self.width, self.height)?;
        if let Some(r) = &self.retransmit {
            if r.timeout == 0 {
                return Err(ConfigError::OutOfRange {
                    what: "retransmit timeout",
                    range: ">= 1",
                });
            }
        }
        Ok(())
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::paper_3x3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_table_ii() {
        let cfg = NetworkConfig::paper_3x3();
        assert_eq!(cfg.width, 3);
        assert_eq!(cfg.height, 3);
        assert_eq!(cfg.link_latency, 2);
        assert_eq!(cfg.total_vcs_per_port(), 8); // 2+2+4
        assert_eq!(cfg.buffer_flits_per_port(), 64);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = NetworkConfig::paper_3x3();
        cfg.vnets.clear();
        assert_eq!(cfg.validate(), Err(ConfigError::NoVnets));

        let mut cfg = NetworkConfig::paper_3x3();
        cfg.vnets[1].vcs = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroVcs { vnet: 1 }));

        let mut cfg = NetworkConfig::paper_3x3();
        cfg.vnets[2].buffer_depth = 0;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ZeroBufferDepth { vnet: 2 })
        );

        let mut cfg = NetworkConfig::paper_3x3();
        cfg.link_latency = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroLinkLatency));

        let mut cfg = NetworkConfig::paper_3x3();
        cfg.eject_bandwidth = 0;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::OutOfRange { .. })
        ));

        // A 1x1 mesh (no links) is rejected; degenerate 1xN meshes are not.
        let mut cfg = NetworkConfig::paper_3x3();
        (cfg.width, cfg.height) = (1, 1);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::OutOfRange { .. })
        ));
        (cfg.width, cfg.height) = (1, 4);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn eight_by_eight_preset() {
        let cfg = NetworkConfig::paper_8x8();
        assert_eq!((cfg.width, cfg.height), (8, 8));
        assert_eq!(cfg.buffer_flits_per_port(), 64);
    }
}
