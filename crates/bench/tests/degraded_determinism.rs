//! Degraded-mode determinism goldens (DESIGN.md §13): a fixed kill
//! schedule — a mid-run link kill followed by a full node kill — must be
//! **byte-identical** across `sim_threads` ∈ {1, 2, 4, 8}, across the
//! full-scan and activity-tracked stepping paths, and across a mid-storm
//! snapshot/restore.
//!
//! The fingerprint extends the fault-free parallel-equivalence one with the
//! structured fault artifacts: the ordered fault log (every killed flit and
//! lost credit, in serial deterministic order) and the per-packet
//! `Unreachable` records produced when bounded retransmission gives up on
//! the isolated node. Every case also proves the storm actually engaged
//! (`links_failed > 0`, `packets_unreachable > 0`) and, for multithreaded
//! runs, that the parallel engine genuinely stepped, so the comparisons are
//! never vacuous.

use afc_bench::MechanismId;
use afc_netsim::config::{NetworkConfig, RetransmitConfig};
use afc_netsim::faults::FaultPlan;
use afc_netsim::flit::Cycle;
use afc_netsim::geom::{Coord, Direction};
use afc_netsim::network::Network;
use afc_netsim::packet::DeliveredPacket;
use afc_netsim::sim::{Simulation, TrafficModel};
use afc_traffic::openloop::{OpenLoopTraffic, PacketMix, RateSpec};
use afc_traffic::synthetic::Pattern;

const MECHANISMS: [MechanismId; 4] = [
    MechanismId::Backpressured,
    MechanismId::Backpressureless,
    MechanismId::Drop,
    MechanismId::Afc,
];

/// 8×8 mesh with a two-stage kill storm: the eastbound link out of (3,3)
/// dies at cycle 300, then node (5,2) is severed entirely at cycle 700.
/// Bounded retransmission (3 attempts, short timeout) converts traffic for
/// the dead node into structured `Unreachable` records quickly enough for
/// the drain budget.
fn storm_config() -> NetworkConfig {
    let base = NetworkConfig::paper_8x8();
    let mesh = base.mesh().expect("valid mesh");
    let hub = mesh.node_at(Coord::new(3, 3)).expect("in bounds");
    let victim = mesh.node_at(Coord::new(5, 2)).expect("in bounds");
    NetworkConfig {
        faults: FaultPlan::none()
            .kill_link(hub, Direction::East, 300)
            .kill_node(victim, 700),
        retransmit: Some(RetransmitConfig {
            timeout: 250,
            backoff_cap: 1,
            max_attempts: 3,
        }),
        ..base
    }
}

/// Records every delivered packet so the full delivery stream participates
/// in the comparison, not just aggregate statistics.
struct Recording {
    inner: OpenLoopTraffic,
    log: Vec<DeliveredPacket>,
}

impl TrafficModel for Recording {
    fn pre_cycle(&mut self, now: Cycle, net: &mut Network) {
        self.inner.pre_cycle(now, net);
    }

    fn on_delivered(&mut self, packet: &DeliveredPacket, now: Cycle, net: &mut Network) {
        self.log.push(*packet);
        self.inner.on_delivered(packet, now, net);
    }

    // The recorded log is test instrumentation, not simulation state; the
    // checkpoint carries only the generator.
    fn save_state(
        &self,
        w: &mut afc_netsim::snapshot::SnapshotWriter,
    ) -> Result<(), afc_netsim::snapshot::SnapshotError> {
        self.inner.save_state(w)
    }

    fn load_state(
        &mut self,
        r: &mut afc_netsim::snapshot::SnapshotReader<'_>,
    ) -> Result<(), afc_netsim::snapshot::SnapshotError> {
        self.inner.load_state(r)
    }
}

fn make_sim(
    config: &NetworkConfig,
    id: MechanismId,
    seed: u64,
    threads: usize,
) -> Simulation<Recording> {
    let network =
        Network::new(config.clone(), id.mechanism().factory.as_ref(), seed).expect("valid config");
    let traffic = Recording {
        inner: OpenLoopTraffic::new(
            RateSpec::Uniform(0.25),
            Pattern::UniformRandom,
            PacketMix::paper(),
            seed ^ 0x7AFF1C,
        ),
        log: Vec::new(),
    };
    let mut sim = Simulation::new(network, traffic);
    sim.network.set_sim_threads(threads);
    sim
}

/// The behavioral fingerprint: all statistics, aggregate router counters,
/// the ordered fault log, and every structured `Unreachable` record.
fn fingerprint_of(sim: &Simulation<Recording>) -> String {
    format!(
        "stats={:?} counters={:?} now={} drained={} modes={:?} faults={:?} unreachable={:?}",
        sim.network.stats(),
        sim.network.total_counters(),
        sim.network.now(),
        sim.network.is_drained(),
        sim.network.modes(),
        sim.network.fault_log(),
        sim.network.unreachable_packets(),
    )
}

fn run_case(
    config: &NetworkConfig,
    id: MechanismId,
    seed: u64,
    threads: usize,
) -> (String, Vec<DeliveredPacket>, u64) {
    let mut sim = make_sim(config, id, seed, threads);
    sim.run(900);
    sim.traffic.inner.stop();
    sim.drain(20_000);
    sim.network.audit().expect("flit conservation");
    sim.network.credit_audit().expect("credit conservation");
    assert!(
        sim.network.is_drained(),
        "{} x{threads}: bounded retransmission must let the storm run drain",
        id.label()
    );
    let s = sim.network.stats();
    assert!(s.links_failed > 0, "{}: kills must be detected", id.label());
    assert!(
        s.packets_unreachable > 0,
        "{}: the severed node must produce structured unreachable records",
        id.label()
    );
    let fp = fingerprint_of(&sim);
    let parallel = sim.network.parallel_cycles();
    (fp, sim.traffic.log, parallel)
}

/// The headline golden: 4 mechanisms × thread counts {1, 2, 4, 8} through
/// the fixed kill storm. Identical fingerprints everywhere — including the
/// fault log and the unreachable records — and the multithreaded runs must
/// actually have used the parallel engine while links were dying.
#[test]
fn kill_storm_is_thread_count_invariant() {
    let config = storm_config();
    for id in MECHANISMS {
        let (base_fp, base_log, base_par) = run_case(&config, id, 0xDE6AD, 1);
        assert_eq!(base_par, 0, "serial baseline must never step parallel");
        assert!(
            !base_log.is_empty(),
            "{}: vacuous comparison (nothing delivered)",
            id.label()
        );
        for threads in [2usize, 4, 8] {
            let (fp, log, parallel) = run_case(&config, id, 0xDE6AD, threads);
            assert!(
                parallel > 0,
                "{} x{threads}: parallel engine never engaged under a \
                 deterministic kill plan",
                id.label()
            );
            assert_eq!(
                base_fp,
                fp,
                "{} x{threads}: degraded-mode run diverges from serial",
                id.label()
            );
            assert_eq!(
                base_log,
                log,
                "{} x{threads}: delivered-packet streams diverge under kills",
                id.label()
            );
        }
    }
}

/// Full-scan stepping (the activity-gate bypass) must agree with the
/// activity-tracked path through the same storm: fault detection and gossip
/// keep exactly the right routers live.
#[test]
fn kill_storm_survives_full_scan() {
    let config = storm_config();
    for id in [MechanismId::Backpressured, MechanismId::Afc] {
        let (base_fp, base_log, _) = run_case(&config, id, 0xDE6AD, 1);
        let mut sim = make_sim(&config, id, 0xDE6AD, 1);
        sim.network.set_full_scan(true);
        sim.run(900);
        sim.traffic.inner.stop();
        sim.drain(20_000);
        sim.network.audit().expect("flit conservation");
        sim.network.credit_audit().expect("credit conservation");
        assert_eq!(
            base_fp,
            fingerprint_of(&sim),
            "{}: full-scan diverges under kills",
            id.label()
        );
        assert_eq!(base_log, sim.traffic.log, "{}", id.label());
    }
}

/// Mid-storm checkpointing: a snapshot taken *between* the two kills (first
/// link dead and detected, node kill still pending) has thread-count
/// invariant bytes, and resuming it at any thread count reproduces the
/// serial continuation exactly — stats, deliveries, fault log, unreachable
/// records, and the bytes of a second checkpoint taken after the storm.
#[test]
fn mid_storm_snapshots_are_thread_count_invariant() {
    let config = storm_config();
    for id in [MechanismId::Drop, MechanismId::Afc] {
        let mut serial = make_sim(&config, id, 0x5EED, 1);
        serial.run(500);
        assert!(
            serial.network.stats().links_failed > 0,
            "{}: snapshot must land mid-storm, after the first detection",
            id.label()
        );
        let serial_snap = serial.snapshot().expect("serial snapshot");

        let mut parallel = make_sim(&config, id, 0x5EED, 4);
        parallel.run(500);
        assert!(parallel.network.parallel_cycles() > 0);
        let parallel_snap = parallel.snapshot().expect("parallel snapshot");
        assert_eq!(
            serial_snap,
            parallel_snap,
            "{}: mid-storm snapshot bytes differ between engines",
            id.label()
        );

        // Serial continuation through the node kill is the reference...
        serial.run(400);
        serial.traffic.inner.stop();
        serial.drain(20_000);
        serial.network.audit().expect("flit conservation");
        serial.network.credit_audit().expect("credit conservation");
        assert!(serial.network.stats().packets_unreachable > 0);
        let ref_fp = fingerprint_of(&serial);
        let ref_log = serial.traffic.log.clone();
        let ref_snap = serial.snapshot().expect("reference end snapshot");

        // ...and restoring the mid-storm checkpoint must reproduce it at
        // any thread count, second kill and give-ups included.
        for threads in [1usize, 4, 8] {
            let mut resumed = make_sim(&config, id, 0x5EED, threads);
            resumed
                .restore(&serial_snap, "degraded-determinism test")
                .expect("restore");
            resumed.traffic.log.clear();
            let skip = ref_log
                .iter()
                .take_while(|p| p.delivered_at < resumed.network.now())
                .count();
            resumed.run(400);
            resumed.traffic.inner.stop();
            resumed.drain(20_000);
            assert_eq!(
                ref_fp,
                fingerprint_of(&resumed),
                "{} x{threads}: resumed storm diverged from serial continuation",
                id.label()
            );
            assert_eq!(
                &ref_log[skip..],
                &resumed.traffic.log[..],
                "{} x{threads}: post-restore delivery stream diverged",
                id.label()
            );
            let end_snap = resumed.snapshot().expect("end snapshot");
            assert_eq!(
                ref_snap,
                end_snap,
                "{} x{threads}: end-of-storm snapshot bytes diverged",
                id.label()
            );
        }
    }
}
