//! The network engine: wires routers, channels and network interfaces
//! together and advances them cycle by cycle.

use crate::channel::Channel;
use crate::config::NetworkConfig;
use crate::counters::ActivityCounters;
use crate::error::SimError;
use crate::faults::{FaultEvent, FaultEventKind, FlitFate};
use crate::flit::{Cycle, Flit, PacketId};
use crate::geom::{DirMap, Direction, NodeId, PortId};
use crate::ni::NodeInterface;
use crate::packet::{DeliveredPacket, PacketDescriptor, PacketInput};
use crate::rng::SimRng;
use crate::router::{Router, RouterFactory, RouterMode, RouterOutputs};
use crate::stats::NetworkStats;
use crate::topology::Mesh;
use std::collections::VecDeque;

/// Endpoints of one directed channel.
#[derive(Debug, Clone, Copy)]
struct ChannelEnds {
    from: NodeId,
    dir: Direction,
    to: NodeId,
}

/// A complete simulated network: routers, channels and network interfaces.
///
/// Construct via [`Network::new`] with a [`RouterFactory`] selecting the
/// flow-control mechanism, then drive with [`Network::step`] — usually
/// indirectly through [`Simulation`](crate::sim::Simulation).
pub struct Network {
    mesh: Mesh,
    config: NetworkConfig,
    mechanism: &'static str,
    flit_width_bits: u32,
    buffer_flits_per_port: usize,
    routers: Vec<Box<dyn Router>>,
    nis: Vec<NodeInterface>,
    channels: Vec<Channel>,
    ends: Vec<ChannelEnds>,
    /// Outgoing channel index per (node, direction).
    out_chan: Vec<DirMap<Option<usize>>>,
    /// Incoming channel index per (node, direction of the input port).
    in_chan: Vec<DirMap<Option<usize>>>,
    pending: Vec<crate::channel::Delivery>,
    now: Cycle,
    rng: SimRng,
    /// Independent RNG stream for the fault plane: drawing fault outcomes
    /// never perturbs router/traffic randomness, so a run with an empty
    /// `FaultPlan` is bit-identical to one built before faults existed.
    fault_rng: SimRng,
    stats: NetworkStats,
    next_packet_id: u64,
    scratch: RouterOutputs,
    /// Dropped flits in flight on the modeled NACK circuit:
    /// `(retransmission-ready cycle, flit)`.
    nack_queue: Vec<(Cycle, Flit)>,
    /// End-to-end acknowledgements riding back to packet sources:
    /// `(arrival cycle, source node, packet)`.
    ack_queue: Vec<(Cycle, NodeId, PacketId)>,
    /// Per-channel flits held back at the receiving end while the receiver
    /// is stalled by a fault (released one per cycle once the stall lifts).
    held: Vec<VecDeque<Flit>>,
    /// Log of injected faults (capped at [`Network::FAULT_LOG_CAP`]).
    fault_log: Vec<FaultEvent>,
    /// Credit-conservation audit (raw, never reset): credits pushed onto
    /// reverse lanes, credits delivered upstream, credits lost to faults.
    credits_pushed: u64,
    credits_delivered: u64,
    credits_faulted: u64,
    /// Stall watchdog: progress counter sample and the cycle it last moved.
    last_progress: u64,
    last_progress_cycle: Cycle,
    /// Flits that were already in flight when metrics were last reset
    /// (anchors the conservation audit).
    audit_baseline: usize,
    /// When enabled, every offered packet is logged for trace capture.
    offer_log: Option<Vec<(Cycle, NodeId, PacketInput)>>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("mechanism", &self.mechanism)
            .field("mesh", &self.mesh)
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl Network {
    /// Maximum fault events retained in the fault log.
    pub const FAULT_LOG_CAP: usize = 65_536;

    /// Builds a network from a validated configuration, a router factory and
    /// an RNG seed.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`](crate::error::ConfigError) from
    /// [`NetworkConfig::validate`].
    pub fn new(
        config: NetworkConfig,
        factory: &dyn RouterFactory,
        seed: u64,
    ) -> Result<Network, crate::error::ConfigError> {
        config.validate()?;
        let mesh = config.mesh()?;
        let n = mesh.node_count();
        let buffer_flits_per_port = factory.buffer_flits_per_port(&config);

        let routers: Vec<Box<dyn Router>> = mesh
            .nodes()
            .map(|node| factory.build(node, &mesh, &config))
            .collect();
        let nis: Vec<NodeInterface> = mesh
            .nodes()
            .map(|node| {
                let mut ni = NodeInterface::new(node, config.vnet_count());
                if let Some(r) = config.retransmit {
                    ni.enable_recovery(r);
                }
                ni
            })
            .collect();

        let mut channels = Vec::new();
        let mut ends = Vec::new();
        let mut out_chan: Vec<DirMap<Option<usize>>> = vec![DirMap::default(); n];
        let mut in_chan: Vec<DirMap<Option<usize>>> = vec![DirMap::default(); n];
        for node in mesh.nodes() {
            for dir in Direction::ALL {
                if let Some(nb) = mesh.neighbor(node, dir) {
                    let idx = channels.len();
                    channels.push(Channel::new(config.link_latency));
                    ends.push(ChannelEnds {
                        from: node,
                        dir,
                        to: nb,
                    });
                    out_chan[node.index()][dir] = Some(idx);
                    in_chan[nb.index()][dir.opposite()] = Some(idx);
                }
            }
        }
        let pending = vec![crate::channel::Delivery::default(); channels.len()];
        let held = vec![VecDeque::new(); channels.len()];
        let rng = SimRng::seed_from(seed);
        let fault_rng = rng.fork(0x00FA_0171);

        Ok(Network {
            mesh,
            config,
            mechanism: factory.name(),
            flit_width_bits: factory.flit_width_bits(),
            buffer_flits_per_port,
            routers,
            nis,
            channels,
            ends,
            out_chan,
            in_chan,
            pending,
            now: 0,
            rng,
            fault_rng,
            stats: NetworkStats::new(),
            next_packet_id: 0,
            scratch: RouterOutputs::new(),
            nack_queue: Vec::new(),
            ack_queue: Vec::new(),
            held,
            fault_log: Vec::new(),
            credits_pushed: 0,
            credits_delivered: 0,
            credits_faulted: 0,
            last_progress: 0,
            last_progress_cycle: 0,
            audit_baseline: 0,
            offer_log: None,
        })
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The mesh topology.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Mechanism name from the router factory.
    pub fn mechanism(&self) -> &'static str {
        self.mechanism
    }

    /// Flit width in bits (for energy accounting).
    pub fn flit_width_bits(&self) -> u32 {
        self.flit_width_bits
    }

    /// Instantiated buffer capacity per input port in flits (for energy
    /// accounting; 0 for bufferless mechanisms).
    pub fn buffer_flits_per_port(&self) -> usize {
        self.buffer_flits_per_port
    }

    /// Cumulative run statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Read access to a node's router (e.g. for mode inspection).
    pub fn router(&self, node: NodeId) -> &dyn Router {
        self.routers[node.index()].as_ref()
    }

    /// Read access to a node's network interface.
    pub fn ni(&self, node: NodeId) -> &NodeInterface {
        &self.nis[node.index()]
    }

    /// Enqueues a packet for injection at `src`, assigning its id and
    /// creation timestamp. Returns the id.
    ///
    /// # Panics
    ///
    /// Panics if `input.len == 0` or the vnet is out of range (both
    /// indicate traffic-model bugs).
    pub fn offer_packet(&mut self, src: NodeId, input: PacketInput) -> PacketId {
        let id = PacketId(self.next_packet_id);
        self.next_packet_id += 1;
        let desc = PacketDescriptor {
            id,
            src,
            dest: input.dest,
            vnet: input.vnet,
            len: input.len,
            created_at: self.now,
            kind: input.kind,
            tag: input.tag,
        };
        if let Some(log) = &mut self.offer_log {
            log.push((self.now, src, input));
        }
        self.nis[src.index()].enqueue(desc, &mut self.stats);
        id
    }

    /// Starts logging every offered packet (for trace capture).
    pub fn enable_offer_recording(&mut self) {
        self.offer_log = Some(Vec::new());
    }

    /// Takes the offered-packet log recorded since
    /// [`Network::enable_offer_recording`]; recording continues.
    pub fn take_offer_log(&mut self) -> Vec<(Cycle, NodeId, PacketInput)> {
        self.offer_log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Advances the simulation one cycle (four phases — see crate docs).
    ///
    /// # Panics
    ///
    /// Panics if [`Network::try_step`] fails — e.g. the livelock watchdog
    /// fires or a router violates an engine invariant.
    pub fn step(&mut self) {
        if let Err(e) = self.try_step() {
            panic!("{e} (mechanism {})", self.mechanism);
        }
    }

    /// Advances the simulation one cycle, reporting watchdog and protocol
    /// failures as structured errors instead of panicking.
    ///
    /// After an error the network is mid-cycle and must not be stepped
    /// further; the error is terminal for the run.
    ///
    /// # Errors
    ///
    /// [`SimError::Stalled`] when no flit has made progress for the
    /// configured window while flits are in flight; [`SimError::FlitOverAge`]
    /// when a flit exceeds `max_flit_age`; [`SimError::Misrouted`] /
    /// [`SimError::ProtocolViolation`] on router bugs.
    pub fn try_step(&mut self) -> Result<(), SimError> {
        let now = self.now;
        let faults_active = !self.config.faults.is_empty();

        // Phase 1: deliver staged channel arrivals. Arriving flits pass
        // through the fault plane (drop/corrupt/kill) and are held back
        // while the receiving router is stalled; credits cross the fault
        // plane's credit-loss stage on their way upstream.
        for c in 0..self.channels.len() {
            let delivery = std::mem::take(&mut self.pending[c]);
            if delivery.is_empty() && self.held[c].is_empty() {
                continue;
            }
            let ends = self.ends[c];
            if let Some(flit) = delivery.flit {
                self.held[c].push_back(flit);
            }
            for credit in delivery.credits {
                if faults_active
                    && self
                        .config
                        .faults
                        .credit_lost(ends.from, ends.dir, now, &mut self.fault_rng)
                {
                    self.stats.credits_lost += 1;
                    self.stats.faults_injected += 1;
                    self.credits_faulted += 1;
                    self.log_fault(FaultEvent {
                        cycle: now,
                        from: ends.from,
                        dir: ends.dir,
                        kind: FaultEventKind::CreditLost,
                    });
                    continue;
                }
                self.credits_delivered += 1;
                self.routers[ends.from.index()].receive_credit(PortId::Net(ends.dir), credit, now);
            }
            for signal in delivery.control {
                self.routers[ends.from.index()].receive_control(PortId::Net(ends.dir), signal, now);
            }
            if faults_active && self.config.faults.router_stalled(ends.to, now) {
                // The receiver is frozen: arrivals wait in `held` and drain
                // one per cycle (the link's bandwidth) once the stall lifts.
                continue;
            }
            if let Some(mut flit) = self.held[c].pop_front() {
                if faults_active {
                    match self.config.faults.flit_fate(
                        ends.from,
                        ends.dir,
                        now,
                        &mut self.fault_rng,
                    ) {
                        FlitFate::Drop => {
                            self.stats.flits_lost_to_faults += 1;
                            self.stats.faults_injected += 1;
                            self.log_fault(FaultEvent::for_flit(
                                now, ends.from, ends.dir, &flit, true,
                            ));
                            continue;
                        }
                        FlitFate::Corrupt => {
                            flit.corrupt();
                            self.stats.faults_injected += 1;
                            self.log_fault(FaultEvent::for_flit(
                                now, ends.from, ends.dir, &flit, false,
                            ));
                        }
                        FlitFate::Deliver => {}
                    }
                }
                if self.config.max_flit_age > 0 {
                    let age = now.saturating_sub(flit.injected_at);
                    if age > self.config.max_flit_age {
                        return Err(SimError::FlitOverAge {
                            cycle: now,
                            limit: self.config.max_flit_age,
                            age,
                            node: ends.to,
                            flit,
                        });
                    }
                }
                self.routers[ends.to.index()].receive_flit(
                    PortId::Net(ends.dir.opposite()),
                    flit,
                    now,
                );
            }
        }

        // Phase 2a: NACKs that have reached their source become pending
        // retransmissions; end-to-end acks retire outstanding packets; NI
        // retransmit timeouts fire.
        if !self.nack_queue.is_empty() {
            let mut i = 0;
            while i < self.nack_queue.len() {
                if self.nack_queue[i].0 <= now {
                    let (_, flit) = self.nack_queue.swap_remove(i);
                    self.nis[flit.src.index()].nack(flit, now, &mut self.stats);
                } else {
                    i += 1;
                }
            }
        }
        if !self.ack_queue.is_empty() {
            let mut i = 0;
            while i < self.ack_queue.len() {
                if self.ack_queue[i].0 <= now {
                    let (_, src, id) = self.ack_queue.swap_remove(i);
                    self.nis[src.index()].acknowledge(id, &mut self.stats);
                } else {
                    i += 1;
                }
            }
        }
        if self.config.retransmit.is_some() {
            for ni in &mut self.nis {
                ni.check_timeouts(now, &mut self.stats);
            }
        }

        // Phase 2b: injection attempts (stalled routers accept nothing).
        for i in 0..self.nis.len() {
            if faults_active && self.config.faults.router_stalled(NodeId::new(i), now) {
                continue;
            }
            self.nis[i].try_inject(self.routers[i].as_mut(), now, &mut self.stats);
        }

        // Phase 3: router pipeline steps (stalled routers skip their step
        // but still accrue mode residency).
        for i in 0..self.routers.len() {
            if faults_active && self.config.faults.router_stalled(NodeId::new(i), now) {
                Self::count_mode(&mut self.stats, self.routers[i].mode());
                continue;
            }
            self.scratch.clear();
            let mut rng = self.rng.fork((now << 16) ^ i as u64);
            self.routers[i].step(now, &mut rng, &mut self.scratch);

            for dir in Direction::ALL {
                if let Some(flit) = self.scratch.flits[PortId::Net(dir)] {
                    let Some(chan) = self.out_chan[i][dir] else {
                        return Err(SimError::Misrouted {
                            cycle: now,
                            node: NodeId::new(i),
                            dir,
                            flit,
                        });
                    };
                    self.channels[chan].push_flit(flit);
                }
                for &credit in &self.scratch.credits[PortId::Net(dir)] {
                    if let Some(chan) = self.in_chan[i][dir] {
                        self.channels[chan].push_credit(credit);
                        self.credits_pushed += 1;
                    }
                }
            }
            if self.scratch.flits[PortId::Local].is_some() {
                return Err(SimError::ProtocolViolation {
                    cycle: now,
                    node: NodeId::new(i),
                    what: "routers must use `ejected`, not the Local flit slot",
                });
            }
            for &signal in &self.scratch.control {
                for dir in Direction::ALL {
                    if let Some(chan) = self.in_chan[i][dir] {
                        self.channels[chan].push_control(signal);
                    }
                }
            }
            let ejected = std::mem::take(&mut self.scratch.ejected);
            self.nis[i].receive_flits(ejected, now, &mut self.stats);

            // Dropped flits ride the modeled NACK circuit back to their
            // source: latency proportional to the Manhattan distance, plus a
            // small fixed processing cost.
            for flit in self.scratch.dropped.drain(..) {
                let dist = self.mesh.distance(NodeId::new(i), flit.src) as u64;
                let ready = now + dist * self.config.link_latency + 2;
                self.nack_queue.push((ready, flit));
            }

            Self::count_mode(&mut self.stats, self.routers[i].mode());
        }

        // Phase 3b: corrupt arrivals join the NACK circuit; fresh end-to-end
        // acks start their trip back to the source.
        for i in 0..self.nis.len() {
            for flit in self.nis[i].take_corrupt() {
                let dist = self.mesh.distance(NodeId::new(i), flit.src) as u64;
                let ready = now + dist * self.config.link_latency + 2;
                self.nack_queue.push((ready, flit));
            }
            for (src, id) in self.nis[i].take_acks() {
                let dist = self.mesh.distance(NodeId::new(i), src) as u64;
                let ready = now + dist * self.config.link_latency;
                self.ack_queue.push((ready, src, id));
            }
        }

        // Phase 4: advance channels; stage next cycle's deliveries.
        for c in 0..self.channels.len() {
            self.pending[c] = self.channels[c].advance();
        }
        self.now += 1;
        self.stats.cycles += 1;
        self.stats.reassembly_high_water = self.stats.reassembly_high_water.max(
            self.nis
                .iter()
                .map(|ni| ni.reassembly_high_water())
                .max()
                .unwrap_or(0),
        );

        // Stall watchdog: flit progress is injection or delivery.
        // Retransmission deliberately does not count — a source endlessly
        // resending into a dead link is churn, not progress, and must
        // eventually trip the watchdog instead of masking the wedge.
        let progress = self.stats.flits_injected + self.stats.flits_delivered;
        if progress != self.last_progress {
            self.last_progress = progress;
            self.last_progress_cycle = self.now;
        } else if self.config.stall_watchdog > 0
            && self.now.saturating_sub(self.last_progress_cycle) >= self.config.stall_watchdog
        {
            let in_flight = self.unaccounted_flits() as u64;
            if in_flight > 0 {
                return Err(SimError::Stalled {
                    cycle: self.now,
                    in_flight,
                    per_router_occupancy: self.routers.iter().map(|r| r.occupancy()).collect(),
                });
            }
        }
        Ok(())
    }

    fn count_mode(stats: &mut NetworkStats, mode: RouterMode) {
        match mode {
            RouterMode::Backpressured => stats.cycles_backpressured += 1,
            RouterMode::Backpressureless => stats.cycles_backpressureless += 1,
            RouterMode::Transitioning => stats.cycles_transitioning += 1,
        }
    }

    /// Drains all completed packets from every network interface.
    pub fn take_delivered(&mut self) -> Vec<DeliveredPacket> {
        let mut out = Vec::new();
        for ni in &mut self.nis {
            out.extend(ni.take_delivered());
        }
        out
    }

    /// Flits currently inside routers and channels (not counting NI queues).
    pub fn flits_in_network(&self) -> usize {
        let in_routers: usize = self.routers.iter().map(|r| r.occupancy()).sum();
        let in_channels: usize = self.channels.iter().map(Channel::flits_in_flight).sum();
        let staged: usize = self.pending.iter().filter(|d| d.flit.is_some()).count();
        let held: usize = self.held.iter().map(VecDeque::len).sum();
        in_routers + in_channels + staged + held
    }

    /// True when no flit is anywhere in the system and all NIs are idle.
    pub fn is_drained(&self) -> bool {
        self.flits_in_network() == 0
            && self.nack_queue.is_empty()
            && self.ack_queue.is_empty()
            && self.nis.iter().all(NodeInterface::is_idle)
    }

    /// The faults injected so far (capped at [`Network::FAULT_LOG_CAP`]
    /// events; [`NetworkStats::faults_injected`] keeps the true count).
    pub fn fault_log(&self) -> &[FaultEvent] {
        &self.fault_log
    }

    fn log_fault(&mut self, ev: FaultEvent) {
        if self.fault_log.len() < Self::FAULT_LOG_CAP {
            self.fault_log.push(ev);
        }
    }

    /// Aggregated activity counters over all routers.
    pub fn total_counters(&self) -> ActivityCounters {
        let mut total = ActivityCounters::new();
        for r in &self.routers {
            total.merge(r.counters());
        }
        total
    }

    /// Activity counters of a single router.
    pub fn router_counters(&self, node: NodeId) -> &ActivityCounters {
        self.routers[node.index()].counters()
    }

    /// Zeroes statistics and router activity counters (end-of-warmup reset).
    /// Simulation time and in-flight state are preserved.
    pub fn reset_metrics(&mut self) {
        self.stats = NetworkStats::new();
        for r in &mut self.routers {
            *r.counters_mut() = ActivityCounters::new();
        }
        self.audit_baseline = self.unaccounted_flits();
        self.last_progress = 0;
        self.last_progress_cycle = self.now;
    }

    /// Flits currently in limbo between injection and delivery: inside
    /// routers/channels, riding the NACK circuit, or queued for
    /// retransmission.
    fn unaccounted_flits(&self) -> usize {
        self.flits_in_network()
            + self.nack_queue.len()
            + self
                .nis
                .iter()
                .map(NodeInterface::pending_retransmits)
                .sum::<usize>()
    }

    /// Verifies flit conservation: every flit injected (or re-materialized
    /// by a retransmit timeout) since the last metrics reset is delivered,
    /// still in flight, lost to an injected fault, or discarded as a
    /// redundant retransmitted copy.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the imbalance — which would
    /// indicate a router silently losing or duplicating flits.
    pub fn audit(&self) -> Result<(), String> {
        let injected = self.stats.flits_injected as i128;
        let copies = self.stats.flits_retransmit_copies as i128;
        let delivered = self.stats.flits_delivered as i128;
        let in_flight = self.unaccounted_flits() as i128;
        let baseline = self.audit_baseline as i128;
        let faulted = self.stats.flits_lost_to_faults as i128;
        let duplicates = self.stats.duplicate_flits_discarded as i128;
        let absorbed = self.stats.nacks_absorbed as i128;
        if injected + baseline + copies == delivered + in_flight + faulted + duplicates + absorbed {
            Ok(())
        } else {
            Err(format!(
                "flit conservation violated: injected {injected} + baseline {baseline} \
                 + retransmit copies {copies} != delivered {delivered} + in-flight \
                 {in_flight} + faulted {faulted} + duplicates {duplicates} + absorbed \
                 NACKs {absorbed}"
            ))
        }
    }

    /// Verifies credit conservation: every credit pushed onto a reverse
    /// lane since construction is delivered upstream, lost to an injected
    /// credit fault, or still on the wire. A mismatch means a router (or an
    /// AFC mode switch) leaked or double-freed a credit.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the imbalance.
    pub fn credit_audit(&self) -> Result<(), String> {
        let on_wire: usize = self.channels.iter().map(Channel::credits_in_flight).sum();
        let staged: usize = self.pending.iter().map(|d| d.credits.len()).sum();
        let lhs = self.credits_pushed;
        let rhs = self.credits_delivered + self.credits_faulted + (on_wire + staged) as u64;
        if lhs == rhs {
            Ok(())
        } else {
            Err(format!(
                "credit conservation violated: pushed {lhs} != delivered {} + faulted {} \
                 + on-wire {}",
                self.credits_delivered,
                self.credits_faulted,
                on_wire + staged
            ))
        }
    }

    /// Per-node modes right now (useful for spatial-variation analysis).
    pub fn modes(&self) -> Vec<RouterMode> {
        self.routers.iter().map(|r| r.mode()).collect()
    }
}
