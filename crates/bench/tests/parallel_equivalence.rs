//! Thread-count invariance: the intra-run parallel cycle engine
//! (DESIGN.md §12) must be **byte-identical** to the serial engine at any
//! `sim_threads` value.
//!
//! Every case runs the same seeded workload at several thread counts and
//! compares a complete behavioral fingerprint — all statistics (via `{:?}`,
//! so every counter and histogram bucket participates), aggregated router
//! counters, final cycle, drain status, per-router modes, and the exact
//! delivered-packet stream. The saturation cases additionally assert the
//! parallel path actually engaged (`Network::parallel_cycles`), so the
//! comparisons are not vacuously serial-vs-serial. A snapshot family
//! proves the *bytes* of a mid-run checkpoint are thread-count invariant
//! and that parallel execution can resume a serial checkpoint (and vice
//! versa) without divergence.

use afc_bench::MechanismId;
use afc_netsim::config::NetworkConfig;
use afc_netsim::flit::Cycle;
use afc_netsim::network::Network;
use afc_netsim::packet::DeliveredPacket;
use afc_netsim::sim::{Simulation, TrafficModel};
use afc_traffic::openloop::{OpenLoopTraffic, PacketMix, RateSpec};
use afc_traffic::synthetic::Pattern;

const MECHANISMS: [MechanismId; 4] = [
    MechanismId::Backpressured,
    MechanismId::Backpressureless,
    MechanismId::Drop,
    MechanismId::Afc,
];

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

fn patterns() -> [Pattern; 3] {
    [
        Pattern::UniformRandom,
        Pattern::Transpose,
        Pattern::Quadrant,
    ]
}

/// Records every delivered packet so the full delivery stream participates
/// in the comparison, not just aggregate statistics.
struct Recording {
    inner: OpenLoopTraffic,
    log: Vec<DeliveredPacket>,
}

impl TrafficModel for Recording {
    fn pre_cycle(&mut self, now: Cycle, net: &mut Network) {
        self.inner.pre_cycle(now, net);
    }

    fn on_delivered(&mut self, packet: &DeliveredPacket, now: Cycle, net: &mut Network) {
        self.log.push(*packet);
        self.inner.on_delivered(packet, now, net);
    }

    // The recorded log is test instrumentation, not simulation state; the
    // checkpoint carries only the generator.
    fn save_state(
        &self,
        w: &mut afc_netsim::snapshot::SnapshotWriter,
    ) -> Result<(), afc_netsim::snapshot::SnapshotError> {
        self.inner.save_state(w)
    }

    fn load_state(
        &mut self,
        r: &mut afc_netsim::snapshot::SnapshotReader<'_>,
    ) -> Result<(), afc_netsim::snapshot::SnapshotError> {
        self.inner.load_state(r)
    }
}

fn make_sim(
    config: &NetworkConfig,
    id: MechanismId,
    rate: f64,
    pattern: Pattern,
    seed: u64,
    threads: usize,
) -> Simulation<Recording> {
    let network =
        Network::new(config.clone(), id.mechanism().factory.as_ref(), seed).expect("valid config");
    let traffic = Recording {
        inner: OpenLoopTraffic::new(
            RateSpec::Uniform(rate),
            pattern,
            PacketMix::paper(),
            seed ^ 0x7AFF1C,
        ),
        log: Vec::new(),
    };
    let mut sim = Simulation::new(network, traffic);
    sim.network.set_sim_threads(threads);
    // These tests assert `parallel_cycles > 0`: the adaptive wall-clock
    // gate would legally fall back to serial on a loaded or single-core
    // host and make every comparison vacuous, so it is pinned off here.
    // (Byte-identity with the gate *on* is still covered: the gate only
    // ever picks between two engines this suite proves identical.)
    sim.network.set_parallel_adaptive(false);
    sim
}

fn fingerprint_of(sim: &Simulation<Recording>) -> String {
    format!(
        "stats={:?} counters={:?} now={} drained={} modes={:?}",
        sim.network.stats(),
        sim.network.total_counters(),
        sim.network.now(),
        sim.network.is_drained(),
        sim.network.modes(),
    )
}

/// Runs one seeded workload at the given thread count and returns the
/// behavioral fingerprint plus how many cycles the parallel engine stepped.
fn run_case(
    config: &NetworkConfig,
    id: MechanismId,
    rate: f64,
    pattern: Pattern,
    seed: u64,
    threads: usize,
    cycles: u64,
) -> (String, Vec<DeliveredPacket>, u64) {
    let mut sim = make_sim(config, id, rate, pattern, seed, threads);
    sim.run(cycles);
    sim.drain(5_000);
    sim.network.audit().expect("flit conservation");
    sim.network.credit_audit().expect("credit conservation");
    let fp = fingerprint_of(&sim);
    let parallel = sim.network.parallel_cycles();
    (fp, sim.traffic.log, parallel)
}

/// The headline matrix: 4 mechanisms × 3 traffic patterns × thread counts
/// {1, 2, 4, 8} on the 8×8 mesh at a saturating load. Identical
/// fingerprints everywhere; the multi-thread runs must actually have used
/// the parallel engine.
#[test]
fn thread_count_never_changes_the_outcome() {
    let config = NetworkConfig::paper_8x8();
    for id in MECHANISMS {
        for pattern in patterns() {
            let (base_fp, base_log, base_par) =
                run_case(&config, id, 0.30, pattern.clone(), 0xA11CE, 1, 500);
            assert_eq!(base_par, 0, "serial baseline must never step parallel");
            assert!(
                !base_log.is_empty(),
                "{} {pattern:?}: vacuous comparison (nothing delivered)",
                id.label()
            );
            for threads in THREAD_COUNTS {
                let (fp, log, parallel) =
                    run_case(&config, id, 0.30, pattern.clone(), 0xA11CE, threads, 500);
                assert!(
                    parallel > 0,
                    "{} {pattern:?} x{threads}: parallel engine never engaged \
                     (gate too strict for this load?)",
                    id.label()
                );
                assert_eq!(
                    base_fp,
                    fp,
                    "{} {pattern:?} x{threads}: stats diverge from serial",
                    id.label()
                );
                assert_eq!(
                    base_log,
                    log,
                    "{} {pattern:?} x{threads}: delivered-packet streams diverge",
                    id.label()
                );
            }
        }
    }
}

/// More worker threads than routers: the shard count clamps to the node
/// count (every shard is a single router). The activity gate would keep a
/// 3×3 mesh serial forever, so it is opened wide to force the maximally
/// sharded path to actually run.
#[test]
fn more_threads_than_routers_clamps_and_matches() {
    let config = NetworkConfig::paper_3x3();
    for id in MECHANISMS {
        let (base_fp, base_log, _) =
            run_case(&config, id, 0.25, Pattern::UniformRandom, 0xC1A5, 1, 400);
        let mut sim = make_sim(&config, id, 0.25, Pattern::UniformRandom, 0xC1A5, 16);
        sim.network.set_parallel_threshold(0);
        sim.run(400);
        sim.drain(5_000);
        sim.network.audit().expect("flit conservation");
        sim.network.credit_audit().expect("credit conservation");
        assert!(
            sim.network.parallel_cycles() > 0,
            "{}: threshold 0 must engage the parallel engine",
            id.label()
        );
        assert_eq!(base_fp, fingerprint_of(&sim), "{}", id.label());
        assert_eq!(base_log, sim.traffic.log, "{}", id.label());
    }
}

/// Re-sharding mid-run (1 → 4 → 2 → 8 threads every 100 cycles) rebuilds
/// the worker pool on the fly and still changes nothing.
#[test]
fn retargeting_thread_count_mid_run_changes_nothing() {
    let config = NetworkConfig::paper_8x8();
    for id in [MechanismId::Backpressured, MechanismId::Afc] {
        let (base_fp, base_log, _) = run_case(&config, id, 0.30, Pattern::UniformRandom, 7, 1, 400);
        let mut sim = make_sim(&config, id, 0.30, Pattern::UniformRandom, 7, 1);
        for (i, threads) in [1usize, 4, 2, 8].into_iter().enumerate() {
            sim.network.set_sim_threads(threads);
            let _ = i;
            sim.run(100);
        }
        sim.drain(5_000);
        assert!(sim.network.parallel_cycles() > 0);
        assert_eq!(base_fp, fingerprint_of(&sim), "{}", id.label());
        assert_eq!(base_log, sim.traffic.log, "{}", id.label());
    }
}

/// Runs a fixed-cycle workload (no drain — large-mesh backlogs would make
/// draining dominate the suite) and returns the fingerprint pieces.
fn run_fixed(
    config: &NetworkConfig,
    id: MechanismId,
    rate: f64,
    seed: u64,
    threads: usize,
    cycles: u64,
) -> (String, Vec<DeliveredPacket>, u64) {
    let mut sim = make_sim(config, id, rate, Pattern::UniformRandom, seed, threads);
    sim.run(cycles);
    sim.network.audit().expect("flit conservation");
    sim.network.credit_audit().expect("credit conservation");
    let fp = fingerprint_of(&sim);
    let parallel = sim.network.parallel_cycles();
    (fp, sim.traffic.log, parallel)
}

fn mesh_config(side: u16) -> NetworkConfig {
    NetworkConfig {
        width: side,
        height: side,
        ..NetworkConfig::paper_8x8()
    }
}

/// Under `AFC_FULL_SCAN=1` the engine legally stays serial (the full
/// historical walk is the self-check being exercised), so the
/// non-vacuity asserts relax: the comparison then proves full-scan
/// serial ≡ fast-path serial instead, which is exactly that mode's
/// contract.
fn parallel_expected() -> bool {
    std::env::var_os("AFC_FULL_SCAN").is_none()
}

/// 32×32: the smallest mesh where sharding pays. All four mechanisms,
/// serial vs {2, 4, 8} threads, full fingerprint + delivery-stream
/// byte-identity.
#[test]
fn mesh_32x32_thread_count_never_changes_the_outcome() {
    let config = mesh_config(32);
    for id in MECHANISMS {
        let (base_fp, base_log, base_par) = run_fixed(&config, id, 0.08, 0xA11CE, 1, 250);
        assert_eq!(base_par, 0, "serial baseline must never step parallel");
        assert!(
            !base_log.is_empty(),
            "{}: vacuous comparison (nothing delivered)",
            id.label()
        );
        for threads in THREAD_COUNTS {
            let (fp, log, parallel) = run_fixed(&config, id, 0.08, 0xA11CE, threads, 250);
            assert!(
                parallel > 0 || !parallel_expected(),
                "{} x{threads}: parallel engine never engaged at 32x32 saturation",
                id.label()
            );
            assert_eq!(base_fp, fp, "{} x{threads}: stats diverge", id.label());
            assert_eq!(
                base_log,
                log,
                "{} x{threads}: delivered-packet streams diverge",
                id.label()
            );
        }
    }
}

/// 64×64: all four mechanisms, serial vs {2, 4, 8} threads. Shorter run —
/// per-cycle cost is ~16× the 32×32 mesh — but still past warm-up into
/// steady saturation.
#[test]
fn mesh_64x64_thread_count_never_changes_the_outcome() {
    let config = mesh_config(64);
    for id in MECHANISMS {
        let (base_fp, base_log, base_par) = run_fixed(&config, id, 0.04, 0xB0B, 1, 100);
        assert_eq!(base_par, 0, "serial baseline must never step parallel");
        assert!(
            !base_log.is_empty(),
            "{}: vacuous comparison (nothing delivered)",
            id.label()
        );
        for threads in THREAD_COUNTS {
            let (fp, log, parallel) = run_fixed(&config, id, 0.04, 0xB0B, threads, 100);
            assert!(
                parallel > 0 || !parallel_expected(),
                "{} x{threads}: parallel engine never engaged at 64x64 saturation",
                id.label()
            );
            assert_eq!(base_fp, fp, "{} x{threads}: stats diverge", id.label());
            assert_eq!(
                base_log,
                log,
                "{} x{threads}: delivered-packet streams diverge",
                id.label()
            );
        }
    }
}

/// 128×128 smoke: the ROADMAP's 100×-beyond-the-paper scale point. One
/// mechanism (AFC), serial vs 4 threads, byte-identical, and the whole
/// thing — construction included — must land within a wall-clock budget
/// (the "cycle budget" guarding against accidental O(mesh²) per-cycle or
/// per-construction blowups).
#[test]
fn mesh_128x128_smoke_within_budget() {
    let budget = std::time::Duration::from_secs(60);
    let t0 = std::time::Instant::now();
    let config = mesh_config(128);
    let (base_fp, base_log, base_par) = run_fixed(&config, MechanismId::Afc, 0.02, 0x5CA1E, 1, 40);
    assert_eq!(base_par, 0);
    assert!(
        !base_log.is_empty(),
        "vacuous comparison (nothing delivered)"
    );
    let (fp, log, parallel) = run_fixed(&config, MechanismId::Afc, 0.02, 0x5CA1E, 4, 40);
    assert!(
        parallel > 0 || !parallel_expected(),
        "parallel engine never engaged at 128x128"
    );
    assert_eq!(base_fp, fp, "128x128 x4: stats diverge");
    assert_eq!(base_log, log, "128x128 x4: delivery streams diverge");
    let elapsed = t0.elapsed();
    assert!(
        elapsed < budget,
        "128x128 smoke blew its cycle budget: {elapsed:?} > {budget:?}"
    );
}

/// Snapshot invariance: a mid-run checkpoint taken under the parallel
/// engine is byte-for-byte the one the serial engine writes, and resuming
/// it at any thread count (including crossing serial↔parallel) reproduces
/// the serial continuation exactly — stats, deliveries, and the *bytes* of
/// a second checkpoint taken later.
#[test]
fn snapshots_are_thread_count_invariant() {
    let config = NetworkConfig::paper_8x8();
    for id in [MechanismId::Afc, MechanismId::Drop] {
        let mut serial = make_sim(&config, id, 0.30, Pattern::UniformRandom, 0x5EED, 1);
        serial.run(300);
        let serial_snap = serial.snapshot().expect("serial snapshot");

        let mut parallel = make_sim(&config, id, 0.30, Pattern::UniformRandom, 0x5EED, 4);
        parallel.run(300);
        assert!(parallel.network.parallel_cycles() > 0);
        let parallel_snap = parallel.snapshot().expect("parallel snapshot");
        assert_eq!(
            serial_snap,
            parallel_snap,
            "{}: mid-run snapshot bytes differ between engines",
            id.label()
        );

        // Serial continuation is the reference...
        serial.run(200);
        serial.drain(5_000);
        let ref_fp = fingerprint_of(&serial);
        let ref_log = serial.traffic.log.clone();
        let ref_snap = serial.snapshot().expect("reference end snapshot");

        // ...and restoring the checkpoint must reproduce it at any thread
        // count. (The traffic model is restored too, so delivery logs are
        // compared from the checkpoint onward.)
        for threads in [1usize, 4, 8] {
            let mut resumed = make_sim(&config, id, 0.30, Pattern::UniformRandom, 0x5EED, threads);
            resumed
                .restore(&serial_snap, "parallel-equivalence test")
                .expect("restore");
            resumed.traffic.log.clear();
            let skip = ref_log
                .iter()
                .take_while(|p| p.delivered_at < resumed.network.now())
                .count();
            resumed.run(200);
            resumed.drain(5_000);
            assert_eq!(
                ref_fp,
                fingerprint_of(&resumed),
                "{} x{threads}: resumed run diverged from serial continuation",
                id.label()
            );
            assert_eq!(
                &ref_log[skip..],
                &resumed.traffic.log[..],
                "{} x{threads}: post-restore delivery stream diverged",
                id.label()
            );
            let end_snap = resumed.snapshot().expect("end snapshot");
            assert_eq!(
                ref_snap,
                end_snap,
                "{} x{threads}: end-of-run snapshot bytes diverged",
                id.label()
            );
        }
    }
}
